#include "svc/scheduler.hpp"

#include <gtest/gtest.h>

#include "svc/protocol.hpp"

#include <chrono>
#include <thread>
#include <vector>

namespace gcg::svc {
namespace {

constexpr const char* kTiny = "gen:ecology-like?scale=0.02&seed=1";
constexpr const char* kTinySkewed = "gen:kron-like?scale=0.02&seed=1";

SchedulerOptions small_opts() {
  SchedulerOptions opts;
  opts.dispatchers = 2;
  opts.threads_per_job = 2;
  opts.queue_capacity = 32;
  return opts;
}

JobSpec par_job(const std::string& graph, const std::string& algo = "steal") {
  JobSpec spec;
  spec.graph = graph;
  spec.algorithm = algo;
  return spec;
}

TEST(Scheduler, RunsOneJobToCompletion) {
  Scheduler sched(small_opts());
  const auto sub = sched.submit(par_job(kTiny));
  ASSERT_TRUE(sub.accepted) << sub.error << ": " << sub.detail;

  const auto snap = sched.wait(sub.id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status, JobStatus::kDone);
  EXPECT_GT(snap->result.num_colors, 0);
  EXPECT_TRUE(snap->result.verified);
  EXPECT_GE(snap->result.latency_ms, 0.0);
  EXPECT_TRUE(snap->result.colors.empty()) << "colors only on keep_colors";
}

TEST(Scheduler, AllParAlgorithmsAndPriorities) {
  Scheduler sched(small_opts());
  std::vector<std::uint64_t> ids;
  for (const char* algo : {"speculative", "jpl", "steal"}) {
    for (const char* prio : {"random", "degree-biased", "natural"}) {
      JobSpec spec = par_job(kTiny, algo);
      spec.priority = prio;
      const auto sub = sched.submit(std::move(spec));
      ASSERT_TRUE(sub.accepted) << algo << "/" << prio;
      ids.push_back(sub.id);
    }
  }
  for (const auto id : ids) {
    const auto snap = sched.wait(id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->status, JobStatus::kDone) << snap->result.error;
    EXPECT_TRUE(snap->result.verified);
  }
}

TEST(Scheduler, SchedulingKnobsReachTheParBackend) {
  Scheduler sched(small_opts());
  // Same skewed graph, deterministic algorithm, one job per schedule
  // variant: all must complete, verify, and (being jpl) agree on the
  // color count regardless of partitioning or the hub path.
  std::vector<std::uint64_t> ids;
  for (const char* schedule : {"vertex", "edge"}) {
    for (std::uint32_t hub : {0u, 64u, 0xFFFFFFFFu}) {
      JobSpec spec = par_job(kTinySkewed, "jpl");
      spec.priority = "natural";
      spec.grain = 128;
      spec.schedule = schedule;
      spec.hub_threshold = hub;
      const auto sub = sched.submit(std::move(spec));
      ASSERT_TRUE(sub.accepted) << schedule << "/" << hub;
      ids.push_back(sub.id);
    }
  }
  int colors = -1;
  for (const auto id : ids) {
    const auto snap = sched.wait(id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->status, JobStatus::kDone) << snap->result.error;
    EXPECT_TRUE(snap->result.verified);
    if (colors < 0) colors = snap->result.num_colors;
    EXPECT_EQ(snap->result.num_colors, colors)
        << "jpl must be schedule-invariant";
  }
}

TEST(Scheduler, OrderKnobReachesTheParBackend) {
  Scheduler sched(small_opts());
  // Every order must complete, verify on the ORIGINAL vertex ids (the
  // runner unmaps), and return a full-size assignment.
  for (const char* order : {"", "degree-desc", "rcm", "random"}) {
    JobSpec spec = par_job(kTinySkewed, "jpl");
    spec.order = order;
    spec.keep_colors = true;
    const auto sub = sched.submit(std::move(spec));
    ASSERT_TRUE(sub.accepted) << order;
    const auto snap = sched.wait(sub.id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->status, JobStatus::kDone)
        << order << ": " << snap->result.error;
    EXPECT_TRUE(snap->result.verified) << order;
    EXPECT_FALSE(snap->result.colors.empty()) << order;
  }
}

TEST(Scheduler, ProtocolValidatesOrderKnob) {
  Scheduler sched(small_opts());
  // Unknown order names are rejected at parse time.
  const Json bad = handle_request_line(
      sched, std::string("{\"op\":\"submit\",\"graph\":\"") + kTiny +
                 "\",\"order\":\"bogus\"}");
  EXPECT_FALSE(bad.get_bool("ok", true));
  EXPECT_EQ(bad.get_string("error", ""), kErrBadRequest);

  // The reorder pipeline is par-only: shard workers cannot reproduce a
  // job-level order (they resolve graphs from the spec string), and the
  // sim backend has no pipeline at all.
  for (const char* backend : {"shard", "sim"}) {
    const Json rejected = handle_request_line(
        sched, std::string("{\"op\":\"submit\",\"graph\":\"") + kTiny +
                   "\",\"backend\":\"" + backend + "\",\"order\":\"rcm\"}");
    EXPECT_FALSE(rejected.get_bool("ok", true)) << backend;
    EXPECT_EQ(rejected.get_string("error", ""), kErrBadRequest) << backend;
  }

  const Json good = handle_request_line(
      sched, std::string("{\"op\":\"submit\",\"graph\":\"") + kTiny +
                 "\",\"order\":\"degree-desc\",\"wait\":true}");
  EXPECT_TRUE(good.get_bool("ok", false)) << good.dump();
  EXPECT_EQ(good.get_string("status", ""), "done");
}

TEST(Scheduler, ProtocolValidatesSchedulingKnobs) {
  Scheduler sched(small_opts());
  // An unknown schedule name must be rejected at parse time, before the
  // job ever reaches the queue.
  const Json bad = handle_request_line(
      sched, std::string("{\"op\":\"submit\",\"graph\":\"") + kTiny +
                 "\",\"schedule\":\"bogus\"}");
  EXPECT_FALSE(bad.get_bool("ok", true));
  EXPECT_EQ(bad.get_string("error", ""), kErrBadRequest);

  const Json neg = handle_request_line(
      sched, std::string("{\"op\":\"submit\",\"graph\":\"") + kTiny +
                 "\",\"grain\":-5}");
  EXPECT_FALSE(neg.get_bool("ok", true));

  const Json good = handle_request_line(
      sched, std::string("{\"op\":\"submit\",\"graph\":\"") + kTiny +
                 "\",\"schedule\":\"edge\",\"grain\":256,"
                 "\"hub_threshold\":1024,\"wait\":true}");
  EXPECT_TRUE(good.get_bool("ok", false)) << good.dump();
  EXPECT_EQ(good.get_string("status", ""), "done");
}

TEST(Scheduler, SimBackendCharacterizationJob) {
  Scheduler sched(small_opts());
  JobSpec spec;
  spec.graph = kTiny;
  spec.backend = Backend::kSim;
  spec.algorithm = "hybrid+steal";
  const auto sub = sched.submit(std::move(spec));
  ASSERT_TRUE(sub.accepted);
  const auto snap = sched.wait(sub.id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status, JobStatus::kDone) << snap->result.error;
  EXPECT_GT(snap->result.num_colors, 0);
}

TEST(Scheduler, KeepColorsReturnsFullAssignment) {
  Scheduler sched(small_opts());
  JobSpec spec = par_job(kTiny);
  spec.keep_colors = true;
  const auto sub = sched.submit(std::move(spec));
  ASSERT_TRUE(sub.accepted);
  const auto snap = sched.wait(sub.id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status, JobStatus::kDone);
  EXPECT_FALSE(snap->result.colors.empty());
}

TEST(Scheduler, RejectsBadSpecsUpFront) {
  Scheduler sched(small_opts());
  {
    const auto sub = sched.submit(par_job(kTiny, "no-such-algorithm"));
    EXPECT_FALSE(sub.accepted);
    EXPECT_EQ(sub.error, "bad_request");
  }
  {
    JobSpec spec = par_job(kTiny);
    spec.priority = "bogus";
    const auto sub = sched.submit(std::move(spec));
    EXPECT_FALSE(sub.accepted);
    EXPECT_EQ(sub.error, "bad_request");
  }
  {
    const auto sub = sched.submit(par_job("gen:x?bogus=1"));
    EXPECT_FALSE(sub.accepted);
    EXPECT_EQ(sub.error, "bad_request");
  }
  EXPECT_EQ(sched.stats().rejected, 3u);
}

TEST(Scheduler, BadGraphFailsTheJobNotTheService) {
  Scheduler sched(small_opts());
  const auto sub = sched.submit(par_job("/nonexistent/graph.mtx"));
  ASSERT_TRUE(sub.accepted) << "spec is well-formed; failure is async";
  const auto snap = sched.wait(sub.id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status, JobStatus::kFailed);
  EXPECT_NE(snap->result.error.find("bad_graph"), std::string::npos);

  // Service still healthy afterwards.
  const auto ok = sched.submit(par_job(kTiny));
  ASSERT_TRUE(ok.accepted);
  EXPECT_EQ(sched.wait(ok.id)->status, JobStatus::kDone);
}

TEST(Scheduler, QueueFullYieldsDistinctError) {
  SchedulerOptions opts = small_opts();
  opts.dispatchers = 1;
  opts.threads_per_job = 1;
  opts.queue_capacity = 2;
  Scheduler sched(opts);

  // Enough submissions that the 2-deep queue must overflow while the
  // single dispatcher works: collect at least one queue_full.
  bool saw_queue_full = false;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 64 && !saw_queue_full; ++i) {
    const auto sub = sched.submit(par_job(kTiny));
    if (sub.accepted) {
      ids.push_back(sub.id);
    } else {
      EXPECT_EQ(sub.error, "queue_full");
      EXPECT_NE(sub.detail.find("capacity"), std::string::npos);
      saw_queue_full = true;
    }
  }
  EXPECT_TRUE(saw_queue_full);
  for (const auto id : ids) sched.wait(id);
  EXPECT_GE(sched.stats().rejected, 1u);
}

TEST(Scheduler, CacheHitsAcrossJobsOnSameGraph) {
  Scheduler sched(small_opts());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    const auto sub = sched.submit(par_job(i % 2 ? kTiny : kTinySkewed));
    ASSERT_TRUE(sub.accepted);
    ids.push_back(sub.id);
  }
  bool any_cache_hit = false;
  for (const auto id : ids) {
    const auto snap = sched.wait(id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->status, JobStatus::kDone) << snap->result.error;
    any_cache_hit = any_cache_hit || snap->result.cache_hit;
  }
  EXPECT_TRUE(any_cache_hit);
  const auto s = sched.stats();
  EXPECT_EQ(s.registry.misses, 2u) << "two distinct graphs";
  EXPECT_GT(s.registry.hits + s.batched_jobs, 0u);
}

TEST(Scheduler, CancelQueuedJob) {
  SchedulerOptions opts = small_opts();
  opts.dispatchers = 1;
  opts.queue_capacity = 16;
  Scheduler sched(opts);

  // Head-of-line work keeps the dispatcher busy while we cancel.
  std::vector<std::uint64_t> head;
  for (int i = 0; i < 3; ++i) {
    head.push_back(sched.submit(par_job(kTinySkewed)).id);
  }
  const auto victim = sched.submit(par_job(kTiny));
  ASSERT_TRUE(victim.accepted);
  const bool cancelled = sched.cancel(victim.id);
  const auto snap = sched.wait(victim.id);
  ASSERT_TRUE(snap.has_value());
  if (cancelled && snap->status == JobStatus::kCancelled) {
    EXPECT_EQ(snap->result.error, "cancelled");
  } else {
    // Raced with dispatch: the job ran to completion first. Legal.
    EXPECT_EQ(snap->status, JobStatus::kDone);
  }
  for (const auto id : head) sched.wait(id);
}

TEST(Scheduler, DeadlineAlreadyExpiredCancels) {
  SchedulerOptions opts = small_opts();
  opts.dispatchers = 1;
  Scheduler sched(opts);

  // Pile enough work ahead that the deadline (1 microsecond, effectively)
  // has passed by the time the victim dispatches.
  std::vector<std::uint64_t> head;
  for (int i = 0; i < 3; ++i) {
    head.push_back(sched.submit(par_job(kTinySkewed)).id);
  }
  JobSpec spec = par_job(kTiny);
  spec.deadline_ms = 0.001;
  const auto sub = sched.submit(std::move(spec));
  ASSERT_TRUE(sub.accepted);
  const auto snap = sched.wait(sub.id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status, JobStatus::kCancelled);
  EXPECT_EQ(snap->result.error, "deadline_exceeded");
  for (const auto id : head) sched.wait(id);
}

TEST(Scheduler, WaitTimeoutReturnsNonTerminalSnapshot) {
  SchedulerOptions opts = small_opts();
  opts.dispatchers = 1;
  Scheduler sched(opts);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(sched.submit(par_job(kTinySkewed)).id);
  }
  // The tail job can't be done within ~0 ms while the head still runs.
  const auto snap = sched.wait(ids.back(), 0.01);
  ASSERT_TRUE(snap.has_value());
  // Non-terminal or terminal are both possible on a fast machine, but the
  // call must return promptly either way — the assertion is on liveness.
  for (const auto id : ids) sched.wait(id);
}

TEST(Scheduler, UnknownIdsAreReported) {
  Scheduler sched(small_opts());
  EXPECT_FALSE(sched.status(999).has_value());
  EXPECT_FALSE(sched.wait(999).has_value());
  EXPECT_FALSE(sched.cancel(999));
}

TEST(Scheduler, ShutdownWithoutDrainCancelsBacklog) {
  SchedulerOptions opts = small_opts();
  opts.dispatchers = 1;
  Scheduler sched(opts);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    const auto sub = sched.submit(par_job(kTinySkewed));
    if (sub.accepted) ids.push_back(sub.id);
  }
  sched.shutdown(/*drain=*/false);

  // Everything is terminal now: done (got dispatched) or cancelled.
  std::size_t cancelled = 0;
  for (const auto id : ids) {
    const auto snap = sched.status(id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_TRUE(snap->status == JobStatus::kDone ||
                snap->status == JobStatus::kCancelled ||
                snap->status == JobStatus::kFailed);
    if (snap->status == JobStatus::kCancelled) {
      EXPECT_EQ(snap->result.error, "shutting_down");
      ++cancelled;
    }
  }

  const auto sub = sched.submit(par_job(kTiny));
  EXPECT_FALSE(sub.accepted);
  EXPECT_EQ(sub.error, "shutting_down");
}

TEST(Scheduler, StatsCountersAddUp) {
  Scheduler sched(small_opts());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(sched.submit(par_job(kTiny)).id);
  }
  for (const auto id : ids) sched.wait(id);
  const auto s = sched.stats();
  EXPECT_EQ(s.submitted, 5u);
  EXPECT_EQ(s.completed, 5u);
  EXPECT_EQ(s.latency_samples, 5u);
  EXPECT_GT(s.latency_p50_ms, 0.0);
  EXPECT_LE(s.latency_p50_ms, s.latency_p99_ms);
  EXPECT_EQ(s.queue_depth, 0u);
}

}  // namespace
}  // namespace gcg::svc
