// Store <-> service integration: the registry must serve .gbin v2 files
// as zero-copy mapped views charged against the mapped-byte pool, legacy
// files must keep the heap path, and a job dispatched through the
// Scheduler onto a packed graph must color a Csr::is_view() graph with
// no CSR heap copy — the end-to-end acceptance path for the store.
#include "svc/graph_registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/gen/suite.hpp"
#include "graph/io/io.hpp"
#include "store/writer.hpp"
#include "svc/scheduler.hpp"

namespace gcg::svc {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Csr small_graph(std::uint64_t seed = 5) {
  return make_suite_graph("kron-like", {.scale = 0.02, .seed = seed}).graph;
}

ScopedFile packed_graph(const std::string& name, std::uint64_t seed = 5) {
  ScopedFile f(temp_path(name));
  store::write_gbin_v2(f.path(), small_graph(seed));
  return f;
}

TEST(StoreRegistry, ServesGbin2AsMappedView) {
  const ScopedFile f = packed_graph("reg_mapped.gbin");
  GraphRegistry reg;
  const auto g = reg.acquire(f.path());
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->is_view());
  EXPECT_EQ(g->heap_bytes(), 0u);

  const GraphRegistry::Stats s = reg.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.mapped_entries, 1u);
  // Mapped entries are charged their file size against the mapped pool,
  // not the heap pool.
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_GT(s.mapped_bytes, 0u);
}

TEST(StoreRegistry, MmapStoreOffFallsBackToHeap) {
  const ScopedFile f = packed_graph("reg_nommap.gbin");
  GraphRegistry::Options opts;
  opts.mmap_store = false;
  GraphRegistry reg(opts);
  const auto g = reg.acquire(f.path());
  ASSERT_NE(g, nullptr);
  EXPECT_FALSE(g->is_view());

  const GraphRegistry::Stats s = reg.stats();
  EXPECT_EQ(s.mapped_entries, 0u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(StoreRegistry, LegacyV1TakesHeapPath) {
  const ScopedFile f(temp_path("reg_v1.gbin"));
  {
    std::ofstream out(f.path(), std::ios::binary);
    save_binary(out, small_graph());
  }
  GraphRegistry reg;
  const auto g = reg.acquire(f.path());
  ASSERT_NE(g, nullptr);
  EXPECT_FALSE(g->is_view());
  EXPECT_EQ(reg.stats().mapped_entries, 0u);
}

TEST(StoreRegistry, MappedViewSurvivesEviction) {
  const ScopedFile a = packed_graph("reg_evict_a.gbin", 5);
  const ScopedFile b = packed_graph("reg_evict_b.gbin", 6);
  GraphRegistry::Options opts;
  opts.max_mapped_bytes = 1;  // any mapped entry overflows the pool
  GraphRegistry reg(opts);

  const auto ga = reg.acquire(a.path());
  const auto gb = reg.acquire(b.path());  // evicts a's entry
  EXPECT_GE(reg.stats().evictions, 1u);

  // The evicted view's mapping is pinned by the outstanding shared_ptr;
  // reading through it must still be safe and correct.
  EXPECT_TRUE(ga->is_view());
  EXPECT_NO_THROW(ga->validate());
  EXPECT_TRUE(gb->is_view());
}

TEST(StoreRegistry, MappedPoolDoesNotEvictHeapEntries) {
  const ScopedFile m = packed_graph("reg_pools.gbin");
  GraphRegistry::Options opts;
  opts.max_mapped_bytes = 1;  // mapped pool always over budget
  GraphRegistry reg(opts);

  const auto heap = reg.acquire("gen:ecology-like?scale=0.02&seed=1");
  const auto mapped1 = reg.acquire(m.path());
  // The mapped overage may only push out mapped entries; the heap entry
  // must stay resident (still a cache hit).
  bool hit = false;
  (void)reg.acquire("gen:ecology-like?scale=0.02&seed=1", &hit);
  EXPECT_TRUE(hit);
}

TEST(StoreScheduler, ColorsPackedGraphZeroCopyEndToEnd) {
  const ScopedFile f = packed_graph("sched_store.gbin");

  SchedulerOptions opts;
  opts.dispatchers = 1;
  Scheduler sched(opts);

  // The acceptance assertion: the registry entry the job will color IS a
  // view — no CSR heap copy anywhere on the serving path.
  const auto g = sched.registry().acquire(f.path());
  ASSERT_TRUE(g->is_view());

  JobSpec spec;
  spec.graph = f.path();
  spec.backend = Backend::kPar;
  spec.algorithm = "jpl";
  spec.keep_colors = true;
  const auto sub = sched.submit(spec);
  ASSERT_TRUE(sub.accepted) << sub.detail;
  const auto snap = sched.wait(sub.id);
  ASSERT_TRUE(snap.has_value());
  ASSERT_EQ(snap->status, JobStatus::kDone) << snap->result.error;
  EXPECT_TRUE(snap->result.mapped);
  EXPECT_TRUE(snap->result.verified);
  EXPECT_GT(snap->result.num_colors, 0);
  EXPECT_EQ(snap->result.colors.size(), g->num_vertices());
  sched.shutdown();
}

TEST(StoreScheduler, HeapGraphReportsNotMapped) {
  SchedulerOptions opts;
  opts.dispatchers = 1;
  Scheduler sched(opts);
  JobSpec spec;
  spec.graph = "gen:ecology-like?scale=0.02&seed=1";
  spec.backend = Backend::kPar;
  spec.algorithm = "jpl";
  const auto sub = sched.submit(spec);
  ASSERT_TRUE(sub.accepted);
  const auto snap = sched.wait(sub.id);
  ASSERT_TRUE(snap.has_value());
  ASSERT_EQ(snap->status, JobStatus::kDone) << snap->result.error;
  EXPECT_FALSE(snap->result.mapped);
  sched.shutdown();
}

}  // namespace
}  // namespace gcg::svc
