#include "svc/graph_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "graph/gen/special.hpp"
#include "graph/io/io.hpp"
#include "graph/reorder.hpp"
#include "util/narrow.hpp"

namespace gcg::svc {
namespace {

// Small scale keeps generator-backed tests fast.
constexpr const char* kTiny = "gen:ecology-like?scale=0.02&seed=1";

TEST(RegistryKey, GenSpecCanonicalizes) {
  EXPECT_EQ(GraphRegistry::canonical_key("gen:rmat-like"),
            "gen:rmat-like?scale=1&seed=1");
  EXPECT_EQ(GraphRegistry::canonical_key("gen:rmat-like?seed=3&scale=0.50"),
            "gen:rmat-like?scale=0.5&seed=3");
  // Same graph, differently written spec -> same key.
  EXPECT_EQ(GraphRegistry::canonical_key("gen:er-like?scale=0.5"),
            GraphRegistry::canonical_key("gen:er-like?seed=1&scale=0.500"));
}

TEST(RegistryKey, OrderParamCanonicalizes) {
  // Explicit natural order collapses onto the pre-order spelling, so all
  // keys that existed before the order parameter stay byte-identical.
  EXPECT_EQ(GraphRegistry::canonical_key("gen:rmat-like?order=natural"),
            "gen:rmat-like?scale=1&seed=1");
  EXPECT_EQ(GraphRegistry::canonical_key("gen:rmat-like?order=degree-desc"),
            "gen:rmat-like?scale=1&seed=1&order=degree-desc");
  // Parameter order in the spec does not matter; the key is canonical.
  EXPECT_EQ(
      GraphRegistry::canonical_key("gen:er-like?order=rcm&seed=3&scale=0.50"),
      GraphRegistry::canonical_key("gen:er-like?scale=0.5&order=rcm&seed=3"));
  EXPECT_THROW(GraphRegistry::canonical_key("gen:er-like?order=bogus"),
               std::invalid_argument);
}

TEST(Registry, OrderSpecYieldsTheReorderedGraph) {
  GraphRegistry reg;
  const auto base = reg.acquire("gen:ecology-like?scale=0.02&seed=1");
  const auto ordered =
      reg.acquire("gen:ecology-like?scale=0.02&seed=1&order=degree-desc");
  ASSERT_NE(base.get(), ordered.get());  // distinct cache entries
  ASSERT_EQ(base->num_vertices(), ordered->num_vertices());
  ASSERT_EQ(base->num_arcs(), ordered->num_arcs());

  // The registry must apply exactly reorder(generated, order, gen seed):
  // that determinism is what lets every shard worker resolve the same
  // relabeled graph from the spec string alone.
  const Csr expected = reorder(*base, Order::kDegreeDescending, 1);
  for (vid_t v = 0; v < ordered->num_vertices(); ++v) {
    const auto got = ordered->neighbors(v);
    const auto want = expected.neighbors(v);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
        << "vertex " << v;
  }
}

TEST(RegistryKey, MalformedGenSpecsThrow) {
  for (const char* bad : {"gen:", "gen:x?scale=", "gen:x?scale=-1",
                          "gen:x?bogus=1", "gen:x?seed=abc", ""}) {
    EXPECT_THROW(GraphRegistry::canonical_key(bad), std::invalid_argument)
        << bad;
  }
}

// Overflow hardening happens at spec-parse time (graph_registry.cpp):
// a scale whose vertex count would wrap vid_t, a non-finite scale, or a
// seed past uint64 must throw here — which submit() maps to a stable
// bad_request — never reach a generator and truncate.
TEST(RegistryKey, OverflowingGenSpecsThrow) {
  for (const char* bad : {
           "gen:er-like?scale=100",           // past kMaxSuiteScale
           "gen:er-like?scale=1e300",         // astronomically past it
           "gen:er-like?scale=inf",           // parses as +inf
           "gen:er-like?scale=nan",           // escapes <=0 comparisons
           "gen:er-like?seed=18446744073709551616",  // 2^64: u64 overflow
           "gen:er-like?seed=99999999999999999999",
       }) {
    EXPECT_THROW(GraphRegistry::canonical_key(bad), std::invalid_argument)
        << bad;
  }
  // The largest admitted scale and seed still parse.
  EXPECT_NO_THROW(GraphRegistry::canonical_key(
      "gen:er-like?scale=64&seed=18446744073709551615"));
}

TEST(RegistryKey, PathsCanonicalize) {
  // Relative and absolute spellings of the same file agree.
  const std::string rel = "some_graph.mtx";
  const std::string dotted = "./some_graph.mtx";
  EXPECT_EQ(GraphRegistry::canonical_key(rel),
            GraphRegistry::canonical_key(dotted));
}

TEST(Registry, CachesGeneratedGraphs) {
  GraphRegistry reg;
  const auto g1 = reg.acquire(kTiny);
  ASSERT_NE(g1, nullptr);
  EXPECT_GT(g1->num_vertices(), 0u);

  bool hit = false;
  const auto g2 = reg.acquire(kTiny, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(g1.get(), g2.get());  // same resident object

  const auto s = reg.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(Registry, CachesFilesAcrossSpellings) {
  const std::string path = std::string(::testing::TempDir()) + "/gcg_reg.el";
  {
    std::ofstream out(path);
    save_edge_list(out, make_petersen());
  }
  GraphRegistry reg;
  const auto a = reg.acquire(path);
  bool hit = false;
  const auto b = reg.acquire(path, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->num_vertices(), 10u);
  std::remove(path.c_str());
}

TEST(Registry, LruEvictsColdGraphsByCount) {
  GraphRegistry::Options opts;
  opts.max_entries = 2;
  GraphRegistry reg(opts);
  const std::string a = "gen:ecology-like?scale=0.02&seed=1";
  const std::string b = "gen:ecology-like?scale=0.02&seed=2";
  const std::string c = "gen:ecology-like?scale=0.02&seed=3";
  reg.acquire(a);
  reg.acquire(b);
  reg.acquire(a);  // touch a: b is now coldest
  reg.acquire(c);  // evicts b

  bool hit = false;
  reg.acquire(a, &hit);
  EXPECT_TRUE(hit) << "recently used entry must survive";
  reg.acquire(b, &hit);
  EXPECT_FALSE(hit) << "cold entry must have been evicted";
  EXPECT_GE(reg.stats().evictions, 1u);
}

TEST(Registry, ByteBoundEvicts) {
  GraphRegistry::Options opts;
  opts.max_bytes = 1;  // everything over budget: keep only the newest
  GraphRegistry reg(opts);
  reg.acquire("gen:ecology-like?scale=0.02&seed=1");
  reg.acquire("gen:ecology-like?scale=0.02&seed=2");
  EXPECT_EQ(reg.stats().entries, 1u);
}

TEST(Registry, EvictionDoesNotInvalidateOutstandingRefs) {
  GraphRegistry::Options opts;
  opts.max_entries = 1;
  GraphRegistry reg(opts);
  const auto held = reg.acquire("gen:ecology-like?scale=0.02&seed=1");
  const vid_t n = held->num_vertices();
  reg.acquire("gen:ecology-like?scale=0.02&seed=2");  // evicts the first
  EXPECT_EQ(held->num_vertices(), n);  // shared_ptr keeps it alive
}

TEST(Registry, FailedLoadsAreNotCached) {
  GraphRegistry reg;
  EXPECT_THROW(reg.acquire("/nonexistent/graph.mtx"), std::runtime_error);
  EXPECT_THROW(reg.acquire("gen:no-such-suite-graph?scale=0.02"),
               std::exception);
  const auto s = reg.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.load_errors, 2u);
  // A retry attempts the load again (counts as a fresh miss, not a hit).
  EXPECT_THROW(reg.acquire("/nonexistent/graph.mtx"), std::runtime_error);
  EXPECT_EQ(reg.stats().misses, 3u);
}

TEST(Registry, ConcurrentAcquiresShareOneLoad) {
  GraphRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const Csr>> got(kThreads);
  std::vector<std::thread> team;
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&, t] { got[to_unsigned(t)] = reg.acquire(kTiny); });
  }
  for (auto& th : team) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[0].get(), got[to_unsigned(t)].get());
  }
  const auto s = reg.stats();
  EXPECT_EQ(s.misses, 1u) << "exactly one thread should have loaded";
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(Registry, ClearDropsResidency) {
  GraphRegistry reg;
  reg.acquire(kTiny);
  reg.clear();
  EXPECT_EQ(reg.stats().entries, 0u);
  bool hit = true;
  reg.acquire(kTiny, &hit);
  EXPECT_FALSE(hit);
}

}  // namespace
}  // namespace gcg::svc
