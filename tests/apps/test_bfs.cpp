#include "apps/bfs.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/gen/grid.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

TEST(BfsHost, DistancesOnPath) {
  const BfsResult r = bfs_host(make_path(5), 0);
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(r.distance[v], v);
  EXPECT_EQ(r.parent[0], ~vid_t{0});
  EXPECT_EQ(r.parent[3], 2u);
}

TEST(BfsHost, UnreachableStaysMarked) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  const BfsResult r = bfs_host(b.build(), 0);
  EXPECT_EQ(r.distance[1], 1u);
  EXPECT_EQ(r.distance[4], kUnreached);
}

class BfsDeviceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsDeviceTest, MatchesHostDistancesEverywhere) {
  const std::uint64_t seed = GetParam();
  for (const Csr& g :
       {make_grid2d(15, 11), make_barabasi_albert(500, 3, seed),
        make_binary_tree(127), make_star(80), make_petersen()}) {
    const vid_t source = static_cast<vid_t>(seed % g.num_vertices());
    const BfsResult host = bfs_host(g, source);
    simgpu::Device dev(simgpu::test_device());
    const BfsResult device = bfs_device(dev, g, source);
    ASSERT_EQ(device.distance, host.distance);
    ASSERT_EQ(device.levels, host.levels);
    EXPECT_GT(device.device_cycles, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsDeviceTest, ::testing::Values(1, 5, 23));

TEST(BfsDevice, ParentsFormValidBfsTree) {
  const Csr g = make_barabasi_albert(400, 4, 9);
  simgpu::Device dev(simgpu::test_device());
  const BfsResult r = bfs_device(dev, g, 7);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (v == 7 || r.distance[v] == kUnreached) continue;
    const vid_t p = r.parent[v];
    ASSERT_LT(p, g.num_vertices());
    // Parent must be exactly one level closer and adjacent.
    ASSERT_EQ(r.distance[p] + 1, r.distance[v]);
    const auto nb = g.neighbors(v);
    ASSERT_TRUE(std::binary_search(nb.begin(), nb.end(), p));
  }
}

TEST(BfsDevice, FrontierNeverEnqueuesDuplicates) {
  // A clique reaches everyone at level 1 from many discoverers at once;
  // duplicates in the frontier would blow past n and trip the appender.
  const Csr g = make_complete(60);
  simgpu::Device dev(simgpu::test_device());
  const BfsResult r = bfs_device(dev, g, 0);
  EXPECT_EQ(r.levels, 2u);  // expand source, expand its neighbours
  for (vid_t v = 1; v < 60; ++v) ASSERT_EQ(r.distance[v], 1u);
}

TEST(BfsDevice, DeterministicAcrossRuns) {
  const Csr g = make_barabasi_albert(300, 3, 4);
  simgpu::Device a(simgpu::test_device()), b(simgpu::test_device());
  const BfsResult ra = bfs_device(a, g, 0);
  const BfsResult rb = bfs_device(b, g, 0);
  EXPECT_EQ(ra.distance, rb.distance);
  EXPECT_EQ(ra.parent, rb.parent);
  EXPECT_DOUBLE_EQ(ra.device_cycles, rb.device_cycles);
}

}  // namespace
}  // namespace gcg
