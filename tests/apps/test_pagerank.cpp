#include "apps/pagerank.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/gen/grid.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

double total(const std::vector<double>& r) {
  return std::accumulate(r.begin(), r.end(), 0.0);
}

TEST(PageRankHost, RanksSumToOne) {
  PageRankOptions opts;
  opts.max_iterations = 500;  // let every graph reach the tolerance
  for (const Csr& g : {make_grid2d(9, 9), make_barabasi_albert(200, 3, 1),
                       make_star(30)}) {
    const PageRankResult r = pagerank_host(g, opts);
    EXPECT_NEAR(total(r.rank), 1.0, 1e-9);
    EXPECT_LT(r.final_delta, opts.tolerance);
  }
}

TEST(PageRankHost, RegularGraphIsUniform) {
  const Csr g = make_cycle(40);  // 2-regular: stationary = uniform
  const PageRankResult r = pagerank_host(g);
  for (double x : r.rank) EXPECT_NEAR(x, 1.0 / 40, 1e-9);
}

TEST(PageRankHost, HubOutranksLeaves) {
  const PageRankResult r = pagerank_host(make_star(50));
  for (vid_t v = 1; v <= 50; ++v) EXPECT_GT(r.rank[0], r.rank[v]);
}

TEST(PageRankHost, IsolatedVerticesKeepDistribution) {
  const Csr g = make_empty(5);
  const PageRankResult r = pagerank_host(g);
  EXPECT_NEAR(total(r.rank), 1.0, 1e-9);
  for (double x : r.rank) EXPECT_NEAR(x, 0.2, 1e-9);
}

TEST(PageRankDevice, MatchesHostExactly) {
  for (const Csr& g : {make_grid2d(11, 7), make_barabasi_albert(300, 4, 5),
                       make_petersen()}) {
    const PageRankResult host = pagerank_host(g);
    simgpu::Device dev(simgpu::test_device());
    const PageRankResult device = pagerank_device(dev, g);
    ASSERT_EQ(device.iterations, host.iterations);
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_NEAR(device.rank[v], host.rank[v], 1e-12);
    }
    EXPECT_GT(device.device_cycles, 0.0);
  }
}

TEST(PageRankDevice, ToleranceStopsEarly) {
  const Csr g = make_barabasi_albert(200, 3, 7);
  PageRankOptions strict, loose;
  strict.tolerance = 1e-12;
  loose.tolerance = 1e-3;
  simgpu::Device d1(simgpu::test_device()), d2(simgpu::test_device());
  const auto rs = pagerank_device(d1, g, strict);
  const auto rl = pagerank_device(d2, g, loose);
  EXPECT_LT(rl.iterations, rs.iterations);
}

}  // namespace
}  // namespace gcg
