#include "apps/gauss_seidel.hpp"

#include <gtest/gtest.h>

#include "coloring/distance2.hpp"
#include "coloring/runner.hpp"
#include "coloring/seq_greedy.hpp"
#include "graph/gen/powerlaw.hpp"

namespace gcg {
namespace {

std::vector<double> unit_rhs(vid_t n) { return std::vector<double>(n, 1.0); }

TEST(GaussSeidelHost, ConvergesOnPoisson) {
  const SparseMatrix A = make_poisson2d(20, 20);
  const auto b = unit_rhs(A.n());
  GsOptions opts;
  opts.tolerance = 1e-9;
  opts.max_sweeps = 2000;
  const GsResult r = gauss_seidel_host(A, b, opts);
  EXPECT_LT(r.final_residual, opts.tolerance);
  // Residual history is monotone decreasing (SPD, GS contracts).
  for (std::size_t i = 1; i < r.residual_history.size(); ++i) {
    ASSERT_LE(r.residual_history[i], r.residual_history[i - 1] * 1.0001);
  }
}

TEST(GaussSeidelMulticolor, ConvergesToSameSolution) {
  const SparseMatrix A = make_poisson2d(16, 12);
  const auto b = unit_rhs(A.n());
  GsOptions opts;
  opts.tolerance = 1e-10;
  opts.max_sweeps = 3000;
  const GsResult host = gauss_seidel_host(A, b, opts);

  const SeqColoring coloring = greedy_color(A.structure);
  simgpu::Device dev(simgpu::test_device());
  const GsResult mc =
      gauss_seidel_multicolor(dev, A, b, coloring.colors, opts);
  EXPECT_LT(mc.final_residual, opts.tolerance);
  // Same linear system, same fixed point.
  for (vid_t v = 0; v < A.n(); ++v) {
    ASSERT_NEAR(mc.x[v], host.x[v], 1e-7) << v;
  }
  EXPECT_GT(mc.device_cycles, 0.0);
}

TEST(GaussSeidelMulticolor, WorksWithGpuColoring) {
  // End-to-end: GPU coloring feeds the GPU solver.
  const Csr g = make_barabasi_albert(400, 3, 3);
  const SparseMatrix A = make_graph_laplacian(g, 1.0);
  const auto b = unit_rhs(A.n());
  const auto coloring =
      run_coloring(simgpu::test_device(), g, Algorithm::kHybridSteal);
  simgpu::Device dev(simgpu::test_device());
  GsOptions opts;
  opts.tolerance = 1e-8;
  opts.max_sweeps = 500;
  const GsResult r = gauss_seidel_multicolor(dev, A, b, coloring.colors, opts);
  EXPECT_LT(r.final_residual, opts.tolerance);
}

TEST(GaussSeidelMulticolor, FewerColorsFewerLaunchesPerSweep) {
  const SparseMatrix A = make_poisson2d(12, 12);
  const auto b = unit_rhs(A.n());
  GsOptions opts;
  opts.max_sweeps = 1;

  // Red-black (2 classes) vs a deliberately wasteful coloring (id % 8,
  // fixed up to validity by greedy on top).
  const SeqColoring two = greedy_color(A.structure);  // 2 colors on a grid
  ASSERT_EQ(two.num_colors, 2);
  simgpu::Device dev2(simgpu::test_device());
  gauss_seidel_multicolor(dev2, A, b, two.colors, opts);
  const auto launches_two = dev2.launch_count();

  // A distance-2 coloring is valid for distance-1 use but wasteful here.
  const SeqColoring wasteful = greedy_color_d2(A.structure);
  ASSERT_GT(wasteful.num_colors, 2);
  simgpu::Device dev8(simgpu::test_device());
  gauss_seidel_multicolor(dev8, A, b, wasteful.colors, opts);
  EXPECT_GT(dev8.launch_count(), launches_two);
}

TEST(GaussSeidelMulticolorDeathTest, RejectsInvalidColoring) {
  const SparseMatrix A = make_poisson2d(4, 4);
  const auto b = unit_rhs(A.n());
  std::vector<color_t> bad(A.n(), 0);  // everything one color: invalid
  simgpu::Device dev(simgpu::test_device());
  EXPECT_DEATH(gauss_seidel_multicolor(dev, A, b, bad), "precondition");
}

}  // namespace
}  // namespace gcg
