#include "apps/sparse.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

TEST(Sparse, Poisson2dStructure) {
  const SparseMatrix A = make_poisson2d(4, 3);
  EXPECT_EQ(A.n(), 12u);
  EXPECT_EQ(A.values.size(), A.structure.num_arcs());
  for (double d : A.diag) EXPECT_DOUBLE_EQ(d, 4.0);
  for (double v : A.values) EXPECT_DOUBLE_EQ(v, -1.0);
}

TEST(Sparse, LaplacianIsDiagonallyDominant) {
  const Csr g = make_barabasi_albert(100, 3, 1);
  const SparseMatrix A = make_graph_laplacian(g, 0.5);
  for (vid_t v = 0; v < A.n(); ++v) {
    double offsum = 0.0;
    for (eid_t e = A.structure.offset(v); e < A.structure.offset(v + 1); ++e) {
      offsum += std::abs(A.values[e]);
    }
    EXPECT_GT(A.diag[v], offsum - 1e-12);
  }
}

TEST(Sparse, HostSpmvKnownResult) {
  // Poisson on a 1x3 path: A = [[4,-1,0],[-1,4,-1],[0,-1,4]].
  const SparseMatrix A = make_poisson2d(3, 1);
  const std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y(3);
  spmv_host(A, x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0 * 1 - 2);
  EXPECT_DOUBLE_EQ(y[1], -1 + 4.0 * 2 - 3);
  EXPECT_DOUBLE_EQ(y[2], -2 + 4.0 * 3);
}

TEST(Sparse, DeviceSpmvMatchesHost) {
  const Csr g = make_barabasi_albert(500, 4, 7);
  const SparseMatrix A = make_graph_laplacian(g);
  std::vector<double> x(A.n());
  for (vid_t v = 0; v < A.n(); ++v) x[v] = std::sin(v * 0.37);
  std::vector<double> y_host(A.n()), y_dev(A.n());
  spmv_host(A, x, y_host);
  simgpu::Device dev(simgpu::test_device());
  const auto launch = spmv_device(dev, A, x, y_dev);
  for (vid_t v = 0; v < A.n(); ++v) {
    ASSERT_NEAR(y_dev[v], y_host[v], 1e-12) << v;
  }
  EXPECT_GT(launch.total.mem_transactions, 0u);
  EXPECT_GT(dev.total_cycles(), 0.0);
}

TEST(Sparse, ResidualOfExactSolutionIsZero) {
  const SparseMatrix A = make_poisson2d(5, 5);
  std::vector<double> x(A.n());
  for (vid_t v = 0; v < A.n(); ++v) x[v] = 0.01 * v;
  std::vector<double> b(A.n());
  spmv_host(A, x, b);
  EXPECT_NEAR(residual_inf(A, x, b), 0.0, 1e-12);
}

}  // namespace
}  // namespace gcg
