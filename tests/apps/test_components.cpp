#include "apps/components.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/gen/grid.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"
#include "graph/stats.hpp"

namespace gcg {
namespace {

TEST(ComponentsDevice, MatchesHostBfsCount) {
  for (const Csr& g : {make_grid2d(13, 9), make_barabasi_albert(300, 3, 2),
                       make_rmat(9, 4, {}, 3), make_empty(12)}) {
    simgpu::Device dev(simgpu::test_device());
    const ComponentsResult r = components_device(dev, g);
    EXPECT_EQ(r.num_components, connected_components(g));
  }
}

TEST(ComponentsDevice, LabelsAreComponentMinima) {
  GraphBuilder b(7);
  b.add_edge(2, 5);
  b.add_edge(5, 6);
  b.add_edge(1, 3);
  const Csr g = b.build();
  simgpu::Device dev(simgpu::test_device());
  const ComponentsResult r = components_device(dev, g);
  EXPECT_EQ(r.label[2], 2u);
  EXPECT_EQ(r.label[5], 2u);
  EXPECT_EQ(r.label[6], 2u);
  EXPECT_EQ(r.label[1], 1u);
  EXPECT_EQ(r.label[3], 1u);
  EXPECT_EQ(r.label[0], 0u);
  EXPECT_EQ(r.label[4], 4u);
  EXPECT_EQ(r.num_components, 4u);
}

TEST(ComponentsDevice, IterationsTrackDiameter) {
  // Label propagation needs ~diameter iterations on a path; far fewer on
  // a small-world graph.
  simgpu::Device d1(simgpu::test_device());
  const ComponentsResult path = components_device(d1, make_path(100));
  simgpu::Device d2(simgpu::test_device());
  const ComponentsResult star = components_device(d2, make_star(100));
  EXPECT_GT(path.iterations, 50u);
  EXPECT_LE(star.iterations, 3u);
}

TEST(ComponentsDevice, Deterministic) {
  const Csr g = make_rmat(8, 4, {}, 1);
  simgpu::Device a(simgpu::test_device()), b(simgpu::test_device());
  EXPECT_EQ(components_device(a, g).label, components_device(b, g).label);
}

}  // namespace
}  // namespace gcg
