// Real multi-process acceptance test: the coordinator forks actual
// shard_worker binaries (path injected by CMake as GCG_SHARD_WORKER_BIN)
// and the result must match the in-process fleet bit for bit — worker
// processes are an implementation detail, never part of the answer.
#include <gtest/gtest.h>

#include <csignal>
#include <vector>

#include "check/coloring.hpp"
#include "shard/coordinator.hpp"
#include "shard/process.hpp"
#include "svc/graph_registry.hpp"

namespace gcg::shard {
namespace {

constexpr const char* kGraph = "gen:kron-like?scale=0.08&seed=4";

TEST(ShardProcessE2E, ForkedFleetMatchesInProcessFleet) {
  svc::GraphRegistry local;
  const auto g = local.acquire(kGraph);

  ShardJob job;
  job.graph = kGraph;
  job.shards = 4;
  job.seed = 11;

  CoordinatorOptions forked;
  forked.workers = 2;
  forked.worker_threads = 2;
  forked.worker_exec = GCG_SHARD_WORKER_BIN;
  Coordinator across_processes(forked);
  ShardRunStats st;
  const std::vector<color_t> colors = across_processes.color(*g, job, &st);

  ASSERT_EQ(colors.size(), g->num_vertices());
  EXPECT_FALSE(check::verify_coloring(*g, colors).has_value());
  EXPECT_EQ(st.workers, 2u);

  CoordinatorOptions local_fleet;
  local_fleet.workers = 2;
  local_fleet.worker_threads = 2;
  local_fleet.in_process = true;
  Coordinator in_process(local_fleet);
  EXPECT_EQ(colors, in_process.color(*g, job));
}

TEST(ShardProcessE2E, SpawnFailureIsAnErrorNotAHang) {
  CoordinatorOptions opts;
  opts.workers = 1;
  opts.worker_exec = "/nonexistent/shard_worker";
  opts.connect_timeout_ms = 1500.0;
  EXPECT_THROW(Coordinator{opts}, std::runtime_error);
}

TEST(ShardProcessE2E, ChildProcessLifecycle) {
  ChildProcess p = ChildProcess::spawn("/bin/sleep", {"30"});
  EXPECT_TRUE(p.valid());
  EXPECT_TRUE(p.running());
  p.terminate();
  const int status = p.wait();
  EXPECT_FALSE(p.running());
  EXPECT_EQ(status, -SIGTERM);
  EXPECT_EQ(p.wait(), status);  // idempotent after the reap
}

TEST(ShardProcessE2E, ExecFailureReportsExit127) {
  ChildProcess p = ChildProcess::spawn("/nonexistent/binary", {});
  EXPECT_EQ(p.wait(), 127);
}

}  // namespace
}  // namespace gcg::shard
