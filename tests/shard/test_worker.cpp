// shard::Worker — the per-process request core, driven through its
// typed entry points and its JSON shim (exactly what a WorkerServer
// socket delivers).
#include "shard/worker.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/coloring.hpp"
#include "graph/subgraph.hpp"
#include "svc/graph_registry.hpp"
#include "svc/protocol.hpp"

namespace gcg::shard {
namespace {

constexpr const char* kGraph = "gen:kron-like?scale=0.05&seed=3";

svc::ShardColorRequest color_request(vid_t begin, vid_t end) {
  svc::ShardColorRequest req;
  req.graph = kGraph;
  req.begin = begin;
  req.end = end;
  req.seed = 9;
  req.threads = 2;
  return req;
}

TEST(ShardWorker, InteriorColoringIsValidAndGhostBlind) {
  svc::GraphRegistry local;
  const auto g = local.acquire(kGraph);
  const vid_t half = g->num_vertices() / 2;

  Worker w;
  const svc::ShardColorReply reply = w.shard_color(color_request(0, half));
  ASSERT_EQ(reply.colors.size(), half);
  EXPECT_GT(reply.num_colors, 0);

  // Valid on the induced range: no two in-range neighbors share a color.
  const RangeSubgraph sub = extract_subgraph(*g, 0, half);
  EXPECT_FALSE(check::verify_coloring(sub.graph, reply.colors).has_value());
  EXPECT_EQ(reply.num_boundary, sub.num_boundary);
  EXPECT_EQ(reply.cut_arcs, sub.cut_arcs);
}

TEST(ShardWorker, ColorsAreAFunctionOfRangeAndSeedOnly) {
  // Two workers (fresh registries, fresh state) must produce identical
  // shard colors — this is the bit-stability the fleet relies on when
  // shards land on different processes across runs.
  Worker a, b;
  const svc::ShardColorReply ra = a.shard_color(color_request(16, 400));
  const svc::ShardColorReply rb = b.shard_color(color_request(16, 400));
  EXPECT_EQ(ra.colors, rb.colors);

  // Different seed: same shape, almost surely different colors.
  svc::ShardColorRequest other = color_request(16, 400);
  other.seed = 10;
  const svc::ShardColorReply rc = a.shard_color(other);
  EXPECT_EQ(rc.colors.size(), ra.colors.size());
}

TEST(ShardWorker, RejectsRangeOutsideGraph) {
  Worker w;
  svc::GraphRegistry local;
  const vid_t n = local.acquire(kGraph)->num_vertices();
  EXPECT_THROW(w.shard_color(color_request(0, n + 1)), std::runtime_error);
}

TEST(ShardWorker, RepairRequiresPriorShardColor) {
  Worker w;
  svc::ShardRepairRequest req;
  req.graph = kGraph;
  req.begin = 0;
  req.end = 64;
  req.seed = 1;
  req.losers = {3};
  EXPECT_THROW(w.shard_repair(req), std::runtime_error);
}

TEST(ShardWorker, RepairRecolorsLosersAgainstGhosts) {
  svc::GraphRegistry local;
  const auto g = local.acquire(kGraph);
  const vid_t half = g->num_vertices() / 2;

  Worker w;
  const svc::ShardColorReply colored = w.shard_color(color_request(0, half));

  // Pick a boundary vertex and claim every cross-range neighbor wears
  // its color: the worker must move it off that color.
  const RangeSubgraph sub = extract_subgraph(*g, 0, half);
  vid_t loser = half;
  for (vid_t v = 0; v < half; ++v) {
    if (sub.is_boundary[v]) {
      loser = v;
      break;
    }
  }
  ASSERT_LT(loser, half) << "graph/cut too small: no boundary vertex";

  svc::ShardRepairRequest req;
  req.graph = kGraph;
  req.begin = 0;
  req.end = half;
  req.seed = 5;
  req.losers = {loser};
  const color_t clash = colored.colors[loser];
  for (const vid_t u : g->neighbors(loser)) {
    if (u >= half) {
      req.ghost_ids.push_back(u);
      req.ghost_colors.push_back(clash);
    }
  }
  ASSERT_FALSE(req.ghost_ids.empty());

  const svc::ShardRepairReply fixed = w.shard_repair(req);
  ASSERT_EQ(fixed.ids, req.losers);
  ASSERT_EQ(fixed.colors.size(), 1u);
  EXPECT_NE(fixed.colors[0], clash);
  // And the new color cannot clash with any in-range neighbor either.
  for (const vid_t u : g->neighbors(loser)) {
    if (u < half && u != loser) {
      EXPECT_NE(fixed.colors[0], colored.colors[u]);
    }
  }
  EXPECT_GE(fixed.recolored, 1u);
}

TEST(ShardWorker, RepairRejectsLosersOutsideRange) {
  Worker w;
  w.shard_color(color_request(0, 128));
  svc::ShardRepairRequest req;
  req.graph = kGraph;
  req.begin = 0;
  req.end = 128;
  req.seed = 1;
  req.losers = {128};  // first vertex past the range
  EXPECT_THROW(w.shard_repair(req), std::runtime_error);
}

// --- JSON shim -------------------------------------------------------------

TEST(ShardWorker, HandleSpeaksTheLineProtocol) {
  Worker w;

  svc::Json ping{svc::JsonObject{}};
  ping["op"] = svc::Json("ping");
  EXPECT_TRUE(w.handle(ping).get_bool("pong", false));

  svc::Json unknown{svc::JsonObject{}};
  unknown["op"] = svc::Json("frobnicate");
  EXPECT_EQ(w.handle(unknown).get_string("error", ""), svc::kErrUnknownOp);

  // Typed errors surface as bad_request, not a dead worker.
  svc::Json bad{svc::JsonObject{}};
  bad["op"] = svc::Json("shard_color");
  bad["graph"] = svc::Json(kGraph);
  bad["begin"] = svc::Json(std::int64_t{10});
  bad["end"] = svc::Json(std::int64_t{5});  // begin > end
  bad["seed"] = svc::Json(std::int64_t{1});
  EXPECT_EQ(w.handle(bad).get_string("error", ""), svc::kErrBadRequest);

  // Version negotiation applies to worker RPCs like any other.
  svc::Json future{svc::JsonObject{}};
  future["op"] = svc::Json("ping");
  future["protocol_version"] = svc::Json(std::int64_t{99});
  EXPECT_EQ(w.handle(future).get_string("error", ""),
            svc::kErrUnsupportedVersion);

  // Full round trip: request DTO -> JSON -> handle -> JSON -> reply DTO.
  const svc::Json wire =
      svc::shard_color_request_to_json(color_request(0, 200));
  const svc::Json reply = w.handle(wire);
  const svc::ShardColorReply dto = svc::shard_color_reply_from_json(reply);
  EXPECT_EQ(dto.colors.size(), 200u);
}

}  // namespace
}  // namespace gcg::shard
