// shard::Coordinator over an in-process fleet (WorkerServer threads on
// real Unix sockets — same wire protocol as forked workers, one address
// space). Covers the sharded-coloring acceptance criteria: validity,
// bit-stability across worker counts, bounded conflict rounds, stats.
#include "shard/coordinator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "check/coloring.hpp"
#include "svc/graph_registry.hpp"

namespace gcg::shard {
namespace {

constexpr const char* kGraph = "gen:kron-like?scale=0.1&seed=2";
constexpr const char* kDense = "gen:er-like?scale=0.1&seed=2";

CoordinatorOptions in_process(unsigned workers) {
  CoordinatorOptions opts;
  opts.workers = workers;
  opts.worker_threads = 2;
  opts.in_process = true;
  return opts;
}

ShardJob job_for(const char* graph, unsigned shards) {
  ShardJob job;
  job.graph = graph;
  job.shards = shards;
  job.seed = 5;
  return job;
}

TEST(ShardCoordinator, GenSpecWithOrderParamColorsTheReorderedGraph) {
  // An order= parameter inside the gen spec travels with the spec string,
  // so every worker regenerates and relabels the identical graph — this
  // is the sanctioned way to reorder a sharded run.
  constexpr const char* kOrdered = "gen:kron-like?scale=0.1&seed=2&order=rcm";
  svc::GraphRegistry registry;
  const auto g = registry.acquire(kOrdered);
  Coordinator coord(in_process(2));
  ShardRunStats st;
  const std::vector<color_t> colors = coord.color(*g, job_for(kOrdered, 4), &st);
  ASSERT_EQ(colors.size(), g->num_vertices());
  EXPECT_FALSE(check::verify_coloring(*g, colors).has_value());
  EXPECT_EQ(st.shards, 4u);
}

TEST(ShardCoordinator, FourShardsTwoWorkersValidColoring) {
  svc::GraphRegistry local;
  const auto g = local.acquire(kGraph);

  Coordinator coord(in_process(2));
  ASSERT_EQ(coord.workers(), 2u);
  ShardRunStats st;
  const std::vector<color_t> colors = coord.color(*g, job_for(kGraph, 4), &st);

  ASSERT_EQ(colors.size(), g->num_vertices());
  EXPECT_FALSE(check::verify_coloring(*g, colors).has_value());
  EXPECT_EQ(st.shards, 4u);
  EXPECT_EQ(st.workers, 2u);
  EXPECT_GT(st.num_colors, 0);
  EXPECT_GT(st.boundary_vertices, 0u);
  EXPECT_GT(st.cut_arcs, 0u);
  EXPECT_GT(st.boundary_fraction, 0.0);
  EXPECT_LE(st.boundary_fraction, 1.0);
  EXPECT_LE(st.conflict_rounds, 16u);  // the configured default cap
  EXPECT_EQ(st.round_conflicts.size(), st.conflict_rounds);
  EXPECT_GT(st.wall_ms, 0.0);
}

TEST(ShardCoordinator, BitStableAcrossWorkerCounts) {
  svc::GraphRegistry local;
  const auto g = local.acquire(kGraph);

  std::vector<std::vector<color_t>> runs;
  for (const unsigned workers : {1u, 2u, 3u}) {
    Coordinator coord(in_process(workers));
    runs.push_back(coord.color(*g, job_for(kGraph, 4)));
    EXPECT_FALSE(check::verify_coloring(*g, runs.back()).has_value());
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ShardCoordinator, RepeatRunsOnOneFleetAreIdentical) {
  svc::GraphRegistry local;
  const auto g = local.acquire(kGraph);

  Coordinator coord(in_process(2));
  const auto first = coord.color(*g, job_for(kGraph, 6));
  const auto second = coord.color(*g, job_for(kGraph, 6));
  EXPECT_EQ(first, second);

  // A different seed changes the round schedule; still valid.
  ShardJob other = job_for(kGraph, 6);
  other.seed = 77;
  const auto third = coord.color(*g, other);
  EXPECT_FALSE(check::verify_coloring(*g, third).has_value());
}

TEST(ShardCoordinator, SingleShardNeedsNoConflictRounds) {
  svc::GraphRegistry local;
  const auto g = local.acquire(kGraph);

  Coordinator coord(in_process(1));
  ShardRunStats st;
  const auto colors = coord.color(*g, job_for(kGraph, 1), &st);
  EXPECT_FALSE(check::verify_coloring(*g, colors).has_value());
  EXPECT_EQ(st.shards, 1u);
  EXPECT_EQ(st.conflict_rounds, 0u);
  EXPECT_EQ(st.cut_arcs, 0u);
  EXPECT_EQ(st.recolored, 0u);
}

TEST(ShardCoordinator, ShardCountClampsToVertexCount) {
  svc::GraphRegistry local;
  const auto g = local.acquire(kGraph);

  Coordinator coord(in_process(2));
  ShardRunStats st;
  const auto colors = coord.color(*g, job_for(kGraph, 100000), &st);
  EXPECT_FALSE(check::verify_coloring(*g, colors).has_value());
  EXPECT_LE(st.shards, g->num_vertices());
}

TEST(ShardCoordinator, TightRoundCapStaysValidViaInlineFallback) {
  svc::GraphRegistry local;
  const auto g = local.acquire(kDense);

  CoordinatorOptions opts = in_process(2);
  opts.max_rounds = 1;
  Coordinator coord(opts);
  ShardRunStats st;
  const auto colors = coord.color(*g, job_for(kDense, 8), &st);
  EXPECT_FALSE(check::verify_coloring(*g, colors).has_value());
  EXPECT_LE(st.conflict_rounds, 1u);
  // A dense uniform graph cut 8 ways cannot settle in one round: the
  // guaranteed-valid path must have kicked in.
  EXPECT_GT(st.fallback_recolored, 0u);
}

TEST(ShardCoordinator, FallbackOffSurfacesTheCapAsAnError) {
  svc::GraphRegistry local;
  const auto g = local.acquire(kDense);

  CoordinatorOptions opts = in_process(2);
  opts.max_rounds = 1;
  opts.fallback_inline = false;
  Coordinator coord(opts);
  EXPECT_THROW(coord.color(*g, job_for(kDense, 8)), std::runtime_error);
}

TEST(ShardCoordinator, JobRoundCapOverridesFleetDefault) {
  svc::GraphRegistry local;
  const auto g = local.acquire(kDense);

  CoordinatorOptions opts = in_process(2);
  opts.max_rounds = 1;
  Coordinator coord(opts);
  ShardJob job = job_for(kDense, 8);
  job.max_rounds = 16;  // lifts the fleet's tight default for this job
  ShardRunStats st;
  const auto colors = coord.color(*g, job, &st);
  EXPECT_FALSE(check::verify_coloring(*g, colors).has_value());
  EXPECT_GT(st.conflict_rounds, 1u);
  EXPECT_EQ(st.fallback_recolored, 0u);
}

}  // namespace
}  // namespace gcg::shard
