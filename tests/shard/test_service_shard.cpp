// backend=shard through the service stack: a Scheduler with an injected
// shard backend (in-process fleet) runs sharded jobs end to end, fills
// the shard stats into JobResult, and rejects shard jobs cleanly when no
// backend is configured.
#include <gtest/gtest.h>

#include "check/coloring.hpp"
#include "shard/backend.hpp"
#include "svc/graph_registry.hpp"
#include "svc/scheduler.hpp"

namespace gcg::shard {
namespace {

constexpr const char* kGraph = "gen:kron-like?scale=0.08&seed=6";

svc::SchedulerOptions with_backend() {
  svc::SchedulerOptions opts;
  opts.dispatchers = 1;
  BackendOptions bopts;
  bopts.workers = 2;
  bopts.worker_threads = 2;
  bopts.in_process = true;
  opts.shard_backend = make_shard_backend(bopts);
  return opts;
}

TEST(ServiceShard, ShardJobRunsEndToEnd) {
  svc::Scheduler sched(with_backend());

  svc::JobSpec spec;
  spec.graph = kGraph;
  spec.backend = svc::Backend::kShard;
  spec.shards = 4;
  spec.seed = 3;
  spec.keep_colors = true;
  const auto submit = sched.submit(spec);
  ASSERT_TRUE(submit.accepted) << submit.detail;

  const auto snap = sched.wait(submit.id);
  ASSERT_TRUE(snap.has_value());
  ASSERT_EQ(snap->status, svc::JobStatus::kDone) << snap->result.error;

  // Per-shard stats merged into the job result.
  EXPECT_EQ(snap->result.shards, 4u);
  EXPECT_GT(snap->result.num_colors, 0);
  EXPECT_GT(snap->result.boundary_fraction, 0.0);
  EXPECT_TRUE(snap->result.verified);

  svc::GraphRegistry local;
  const auto g = local.acquire(kGraph);
  ASSERT_EQ(snap->result.colors.size(), g->num_vertices());
  EXPECT_FALSE(check::verify_coloring(*g, snap->result.colors).has_value());
  sched.shutdown();
}

TEST(ServiceShard, DefaultShardCountAppliesWhenSpecSaysZero) {
  svc::Scheduler sched(with_backend());
  svc::JobSpec spec;
  spec.graph = kGraph;
  spec.backend = svc::Backend::kShard;  // spec.shards stays 0
  const auto submit = sched.submit(spec);
  ASSERT_TRUE(submit.accepted);
  const auto snap = sched.wait(submit.id);
  ASSERT_TRUE(snap.has_value());
  ASSERT_EQ(snap->status, svc::JobStatus::kDone) << snap->result.error;
  EXPECT_EQ(snap->result.shards, 4u);  // BackendOptions::default_shards
  sched.shutdown();
}

TEST(ServiceShard, ShardResultIsStableAcrossRuns) {
  svc::Scheduler sched(with_backend());
  auto run_once = [&] {
    svc::JobSpec spec;
    spec.graph = kGraph;
    spec.backend = svc::Backend::kShard;
    spec.shards = 4;
    spec.seed = 9;
    spec.keep_colors = true;
    const auto submit = sched.submit(spec);
    EXPECT_TRUE(submit.accepted);
    const auto snap = sched.wait(submit.id);
    EXPECT_EQ(snap->status, svc::JobStatus::kDone);
    return snap->result.colors;
  };
  EXPECT_EQ(run_once(), run_once());
  sched.shutdown();
}

TEST(ServiceShard, UnconfiguredBackendRejectsAtSubmit) {
  svc::Scheduler sched;  // no shard backend injected
  svc::JobSpec spec;
  spec.graph = kGraph;
  spec.backend = svc::Backend::kShard;
  const auto submit = sched.submit(spec);
  EXPECT_FALSE(submit.accepted);
  EXPECT_EQ(submit.error, "bad_request");
  EXPECT_FALSE(submit.detail.empty());
  sched.shutdown();
}

}  // namespace
}  // namespace gcg::shard
