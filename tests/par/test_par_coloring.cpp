// End-to-end native backend tests: determinism (fixed seed + 1 thread
// reproduces the sequential reference), parity (valid colorings on the
// full generator suite at several thread counts), and stats plumbing.
#include "par/runner.hpp"

#include <gtest/gtest.h>

#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"
#include "graph/gen/suite.hpp"
#include "par/pool.hpp"

namespace gcg {
namespace {

par::ParOptions opts_with(unsigned threads, std::uint64_t seed = 1) {
  par::ParOptions o;
  o.threads = threads;
  o.seed = seed;
  return o;
}

// --- determinism ------------------------------------------------------------

TEST(ParDeterminismTest, OneThreadSpeculativeEqualsSequentialGreedy) {
  // On one thread the speculative pass sees every earlier assignment, so
  // the whole run degenerates to sequential first-fit in natural order.
  const SuiteOptions sopts{.scale = 0.05, .seed = 3};
  for (const SuiteEntry& entry : make_suite(sopts)) {
    const SeqColoring seq = greedy_color(entry.graph, GreedyOrder::kNatural);
    const par::ParRun run = par::run_par_coloring(
        entry.graph, par::ParAlgorithm::kSpeculative, opts_with(1));
    EXPECT_EQ(run.colors, seq.colors) << entry.name;
    EXPECT_EQ(run.num_colors, seq.num_colors) << entry.name;
  }
}

TEST(ParDeterminismTest, JplNaturalOrderEqualsSequentialGreedyAtAnyThreads) {
  // The classic Jones–Plassmann property: under natural-order priorities
  // a vertex commits only after all lower-id neighbours, so the coloring
  // equals sequential first-fit greedy regardless of the schedule.
  const SuiteOptions sopts{.scale = 0.05, .seed = 2};
  for (const SuiteEntry& entry : make_suite(sopts)) {
    const SeqColoring seq = greedy_color(entry.graph, GreedyOrder::kNatural);
    for (unsigned threads : {1u, 4u}) {
      par::ParOptions o = opts_with(threads);
      o.priority = PriorityMode::kNaturalOrder;
      const par::ParRun run =
          par::run_par_coloring(entry.graph, par::ParAlgorithm::kJpl, o);
      EXPECT_EQ(run.colors, seq.colors) << entry.name << " @" << threads;
    }
  }
}

TEST(ParDeterminismTest, FixedSeedReproducesAcrossRuns) {
  const Csr g = make_barabasi_albert(2000, 4, 17);
  for (par::ParAlgorithm algo : par::all_par_algorithms()) {
    const par::ParRun a = par::run_par_coloring(g, algo, opts_with(3, 42));
    const par::ParRun b = par::run_par_coloring(g, algo, opts_with(3, 42));
    if (algo == par::ParAlgorithm::kSpeculative) {
      // Speculation races are benign but timing-dependent; only the
      // validity is stable. Determinism holds on one thread:
      const par::ParRun c = par::run_par_coloring(g, algo, opts_with(1, 42));
      const par::ParRun d = par::run_par_coloring(g, algo, opts_with(1, 42));
      EXPECT_EQ(c.colors, d.colors);
    } else {
      EXPECT_EQ(a.colors, b.colors) << par_algorithm_name(algo);
      EXPECT_EQ(a.iterations, b.iterations) << par_algorithm_name(algo);
    }
  }
}

TEST(ParDeterminismTest, JplAndStealAreThreadCountInvariant) {
  // Phase barriers make both algorithms compute the same flags no matter
  // how work is scheduled, so colors must not depend on the thread count.
  const Csr g = make_barabasi_albert(3000, 5, 7);
  for (par::ParAlgorithm algo :
       {par::ParAlgorithm::kJpl, par::ParAlgorithm::kSteal}) {
    const par::ParRun one = par::run_par_coloring(g, algo, opts_with(1, 5));
    const par::ParRun four = par::run_par_coloring(g, algo, opts_with(4, 5));
    EXPECT_EQ(one.colors, four.colors) << par_algorithm_name(algo);
    EXPECT_EQ(one.iterations, four.iterations) << par_algorithm_name(algo);
  }
}

// --- parity over the generator suite ----------------------------------------

class ParParityTest : public ::testing::TestWithParam<par::ParAlgorithm> {};

TEST_P(ParParityTest, ValidCompleteColoringOnGeneratorSuite) {
  const SuiteOptions sopts{.scale = 0.05, .seed = 1};
  for (const SuiteEntry& entry : make_suite(sopts)) {
    for (unsigned threads : {1u, 4u}) {
      const par::ParRun run =
          par::run_par_coloring(entry.graph, GetParam(), opts_with(threads));
      EXPECT_TRUE(check::is_valid_coloring(entry.graph, run.colors))
          << entry.name << " @" << threads << ": "
          << check::verify_coloring(entry.graph, run.colors)->to_string();
      EXPECT_EQ(run.num_colors, count_colors(run.colors)) << entry.name;
      EXPECT_GT(run.iterations, 0u) << entry.name;
    }
  }
}

TEST_P(ParParityTest, ValidOnDegenerateShapes) {
  struct Case {
    const char* name;
    Csr graph;
  };
  const std::vector<Case> cases = {{"petersen", make_petersen()},
                                   {"single", make_empty(1)},
                                   {"isolated", make_empty(64)},
                                   {"star", make_star(120)},
                                   {"complete", make_complete(17)},
                                   {"empty", Csr{}}};
  for (const Case& c : cases) {
    const par::ParRun run =
        par::run_par_coloring(c.graph, GetParam(), opts_with(2));
    EXPECT_TRUE(check::is_valid_coloring(c.graph, run.colors)) << c.name;
    EXPECT_EQ(run.colors.size(), c.graph.num_vertices()) << c.name;
  }
}

TEST_P(ParParityTest, FirstFitCommitsStayWithinDegreeBound) {
  // All three algorithms commit first-fit colors, so they stay within the
  // Brooks-style degree+1 bound (and close to the sequential greedy count).
  const SuiteOptions sopts{.scale = 0.05, .seed = 1};
  for (const SuiteEntry& entry : make_suite(sopts)) {
    const par::ParRun run =
        par::run_par_coloring(entry.graph, GetParam(), opts_with(4));
    EXPECT_LE(run.num_colors,
              static_cast<int>(entry.graph.max_degree()) + 1)
        << entry.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllParAlgorithms, ParParityTest,
                         ::testing::ValuesIn(par::all_par_algorithms()),
                         [](const auto& info) {
                           return std::string(par_algorithm_name(info.param));
                         });

// --- stats plumbing ----------------------------------------------------------

TEST(ParStatsTest, WorkerStatsAndImbalanceArePopulated) {
  const Csr g = make_barabasi_albert(5000, 6, 3);
  par::ThreadPool pool(4);
  const par::ParRun run =
      par::run_par_coloring(pool, g, par::ParAlgorithm::kSteal, opts_with(4));
  ASSERT_EQ(run.workers.size(), 4u);
  EXPECT_EQ(run.threads, 4u);
  EXPECT_GT(run.wall_ms, 0.0);
  std::uint64_t vertices = 0, chunks = 0;
  for (const auto& w : run.workers) {
    vertices += w.vertices;
    chunks += w.chunks;
  }
  EXPECT_GT(chunks, 0u);
  EXPECT_GE(vertices, g.num_vertices());  // every frontier pass counted
  EXPECT_GE(run.imbalance.cu_max_over_mean, 1.0);
  // Aggregate steal stats are the sum of the per-worker views.
  StealStats sum;
  for (const auto& w : run.workers) sum += w.steal;
  EXPECT_EQ(sum.pops, run.steal.pops);
  EXPECT_EQ(sum.steal_hits, run.steal.steal_hits);
  EXPECT_EQ(sum.pops + sum.chunks_stolen > 0, true);
}

TEST(ParStatsTest, PoolReuseAcrossRunsIsClean) {
  const Csr g = make_barabasi_albert(1000, 3, 9);
  par::ThreadPool pool(2);
  for (par::ParAlgorithm algo : par::all_par_algorithms()) {
    const par::ParRun run = par::run_par_coloring(pool, g, algo, opts_with(2));
    EXPECT_TRUE(check::is_valid_coloring(g, run.colors)) << par_algorithm_name(algo);
    EXPECT_EQ(run.threads, 2u);
  }
}

}  // namespace
}  // namespace gcg
