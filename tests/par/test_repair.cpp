// par::repair_subset — the speculative conflict-repair primitive the
// shard worker and coordinator drive. Key properties: only subset
// vertices move, the result is valid whenever the rounds don't cap out,
// and the outcome is a pure function of (graph, colors, subset, seed) —
// never of thread count.
#include "par/repair.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "check/coloring.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/random.hpp"
#include "graph/gen/special.hpp"
#include "par/pool.hpp"
#include "par/runner.hpp"

namespace gcg::par {
namespace {

// A valid coloring with every `stride`-th positive-degree vertex
// corrupted to its first neighbor's color. Returns the corrupted ids.
std::vector<vid_t> plant_conflicts(const Csr& g, std::vector<color_t>& colors,
                                   vid_t stride) {
  std::vector<vid_t> planted;
  for (vid_t v = 0; v < g.num_vertices(); v += stride) {
    if (g.degree(v) == 0) continue;
    colors[v] = colors[g.neighbors(v)[0]];
    planted.push_back(v);
  }
  return planted;
}

std::vector<color_t> valid_coloring(const Csr& g) {
  ParOptions opts;
  opts.threads = 2;
  return run_par_coloring(g, ParAlgorithm::kJpl, opts).colors;
}

TEST(RepairSubset, FixesPlantedConflicts) {
  const Csr g = make_rmat(8, 8, {}, 5);
  std::vector<color_t> colors = valid_coloring(g);
  const std::vector<color_t> before = colors;
  const std::vector<vid_t> planted = plant_conflicts(g, colors, 7);
  ASSERT_FALSE(planted.empty());

  const RepairRun run = repair_subset(g, colors, planted);
  EXPECT_FALSE(check::verify_coloring(g, colors).has_value());
  EXPECT_EQ(run.remaining_conflicts, 0u);
  EXPECT_GT(run.rounds, 0u);
  EXPECT_GT(run.recolored, 0u);
  EXPECT_LE(run.recolored, planted.size());

  // Non-subset vertices are frozen, conflicted or not.
  std::vector<bool> in_subset(g.num_vertices(), false);
  for (const vid_t v : planted) in_subset[v] = true;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (!in_subset[v]) EXPECT_EQ(colors[v], before[v]) << "vertex " << v;
  }
}

TEST(RepairSubset, ColorsUncoloredSubsetFromScratch) {
  const Csr g = make_cycle(10);
  std::vector<color_t> colors(10, kUncolored);
  std::vector<vid_t> all(10);
  for (vid_t v = 0; v < 10; ++v) all[v] = v;

  const RepairRun run = repair_subset(g, colors, all);
  EXPECT_FALSE(check::verify_coloring(g, colors).has_value());
  for (const color_t c : colors) EXPECT_NE(c, kUncolored);
  EXPECT_EQ(run.recolored, 10u);
  EXPECT_EQ(run.remaining_conflicts, 0u);
}

TEST(RepairSubset, EmptySubsetIsANoOp) {
  const Csr g = make_cycle(6);
  std::vector<color_t> colors(6, 0);  // wildly invalid, but frozen
  const RepairRun run = repair_subset(g, colors, {});
  EXPECT_EQ(run.rounds, 0u);
  EXPECT_EQ(run.recolored, 0u);
  for (const color_t c : colors) EXPECT_EQ(c, 0);
}

TEST(RepairSubset, ThreadCountInvariant) {
  const Csr g = make_erdos_renyi_gnm(1200, 9600, 17);
  std::vector<color_t> base = valid_coloring(g);
  const std::vector<vid_t> planted = plant_conflicts(g, base, 3);
  ASSERT_GT(planted.size(), 100u);

  auto repaired = [&](ThreadPool* pool) {
    std::vector<color_t> colors = base;
    RepairOptions opts;
    opts.seed = 42;
    opts.pool = pool;
    repair_subset(g, colors, planted, opts);
    EXPECT_FALSE(check::verify_coloring(g, colors).has_value());
    return colors;
  };

  ThreadPool one(1), four(4);
  const std::vector<color_t> serial = repaired(nullptr);
  EXPECT_EQ(serial, repaired(&one));
  EXPECT_EQ(serial, repaired(&four));
}

TEST(RepairSubset, SeedChangesTheOutcomeDeterministically) {
  const Csr g = make_rmat(7, 8, {}, 3);
  std::vector<color_t> base = valid_coloring(g);
  const std::vector<vid_t> planted = plant_conflicts(g, base, 2);

  auto repaired = [&](std::uint64_t seed) {
    std::vector<color_t> colors = base;
    RepairOptions opts;
    opts.seed = seed;
    repair_subset(g, colors, planted, opts);
    return colors;
  };
  EXPECT_EQ(repaired(1), repaired(1));  // same seed: bit-identical
  // Different seeds order the winners differently; both stay valid
  // (checked inside), equality is not required and typically fails.
  (void)repaired(2);
}

TEST(RepairSubset, RoundCapReportsLeftovers) {
  // K_8, all uncolored, everything in the subset: each round colors
  // exactly one winner (any two subset vertices are adjacent), so a
  // 2-round cap must leave 6 conflicted vertices behind.
  const Csr g = make_complete(8);
  std::vector<color_t> colors(8, kUncolored);
  std::vector<vid_t> all(8);
  for (vid_t v = 0; v < 8; ++v) all[v] = v;

  RepairOptions opts;
  opts.max_rounds = 2;
  const RepairRun run = repair_subset(g, colors, all, opts);
  EXPECT_EQ(run.rounds, 2u);
  EXPECT_EQ(run.recolored, 2u);
  EXPECT_EQ(run.remaining_conflicts, 6u);
  // And with the cap lifted the same start converges to a valid K_8.
  std::vector<color_t> fresh(8, kUncolored);
  const RepairRun full = repair_subset(g, fresh, all);
  EXPECT_FALSE(check::verify_coloring(g, fresh).has_value());
  EXPECT_EQ(full.rounds, 8u);
}

TEST(RepairSubset, DuplicateSubsetEntriesTolerated) {
  const Csr g = make_cycle(5);
  std::vector<color_t> colors(5, kUncolored);
  const std::vector<vid_t> dups = {0, 1, 2, 3, 4, 0, 2, 4};
  const RepairRun run = repair_subset(g, colors, dups);
  EXPECT_FALSE(check::verify_coloring(g, colors).has_value());
  EXPECT_EQ(run.recolored, 5u);
}

}  // namespace
}  // namespace gcg::par
