// The reorder-aware pipeline in run_par_coloring: preprocessing orders
// must come back unmapped to the caller's vertex ids (valid on the
// ORIGINAL graph), JPL must stay bit-identical across thread counts and
// SIMD levels within each order, and the pipeline must equal the obvious
// two-step (reorder by hand, color, unmap by hand) computation.
#include <gtest/gtest.h>

#include <vector>

#include "check/coloring.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/random.hpp"
#include "graph/reorder.hpp"
#include "par/runner.hpp"
#include "util/simd.hpp"

namespace gcg {
namespace {

class SimdLevelGuard {
 public:
  ~SimdLevelGuard() { simd::clear_level_override_for_testing(); }
};

std::vector<simd::Level> levels_to_test() {
  std::vector<simd::Level> out = {simd::Level::kScalar};
  if (simd::detect_level() != simd::Level::kScalar) {
    out.push_back(simd::detect_level());
  }
  return out;
}

constexpr Order kOrders[] = {Order::kNatural, Order::kDegreeDescending,
                             Order::kRcm};

par::ParOptions opts_for(Order order, unsigned threads,
                         std::uint64_t seed = 1) {
  par::ParOptions o;
  o.order = order;
  o.threads = threads;
  o.seed = seed;
  return o;
}

TEST(ReorderPipelineTest, ColorsAreValidOnTheOriginalGraph) {
  const Csr g = make_rmat(11, 8, {}, 17);
  for (Order order : {Order::kDegreeDescending, Order::kDegreeAscending,
                      Order::kBfs, Order::kRcm, Order::kRandom}) {
    for (par::ParAlgorithm algo : par::all_par_algorithms()) {
      const par::ParRun run =
          par::run_par_coloring(g, algo, opts_for(order, 4));
      EXPECT_TRUE(check::is_valid_coloring(g, run.colors))
          << order_name(order) << "/" << par_algorithm_name(algo);
      EXPECT_EQ(run.colors.size(), g.num_vertices());
      EXPECT_EQ(run.num_colors, count_colors(run.colors))
          << order_name(order) << "/" << par_algorithm_name(algo);
      EXPECT_EQ(run.order, order);
      EXPECT_GE(run.reorder_ms, 0.0);
    }
  }
}

TEST(ReorderPipelineTest, NaturalOrderReportsNoReorderCost) {
  const Csr g = make_erdos_renyi_gnm(2000, 12000, 3);
  const par::ParRun run = par::run_par_coloring(
      g, par::ParAlgorithm::kJpl, opts_for(Order::kNatural, 2));
  EXPECT_EQ(run.order, Order::kNatural);
  EXPECT_EQ(run.reorder_ms, 0.0);
}

TEST(ReorderPipelineTest, PipelineEqualsManualReorderColorUnmap) {
  // Round-trip property: the pipeline's output at vertex v must be what a
  // natural-order run on the hand-relabeled graph assigns to perm[v] (JPL
  // is deterministic, so this is an exact equality, not just same count).
  const Csr g = make_rmat(10, 8, {}, 23);
  for (Order order : {Order::kDegreeDescending, Order::kRcm, Order::kBfs}) {
    const std::vector<vid_t> perm = make_order(g, order, 1);
    const Csr relabeled = apply_order(g, perm);

    const par::ParRun direct = par::run_par_coloring(
        relabeled, par::ParAlgorithm::kJpl, opts_for(Order::kNatural, 2));
    const par::ParRun piped = par::run_par_coloring(
        g, par::ParAlgorithm::kJpl, opts_for(order, 2));

    ASSERT_EQ(piped.colors.size(), g.num_vertices());
    EXPECT_EQ(piped.num_colors, direct.num_colors) << order_name(order);
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(piped.colors[v], direct.colors[perm[v]])
          << order_name(order) << " vertex " << v;
    }
  }
}

TEST(ReorderPipelineTest, JplBitIdenticalAcrossThreadsAndSimdLevels) {
  // Within one order, neither the thread count nor the SIMD level may
  // change a single color: the vector first-fit is bit-identical to the
  // scalar scan, and JPL is deterministic for any worker count.
  SimdLevelGuard guard;
  const Csr g = make_rmat(11, 8, {}, 99);
  for (Order order : kOrders) {
    simd::force_level_for_testing(simd::Level::kScalar);
    const par::ParRun ref =
        par::run_par_coloring(g, par::ParAlgorithm::kJpl, opts_for(order, 1));
    ASSERT_TRUE(check::is_valid_coloring(g, ref.colors)) << order_name(order);

    for (simd::Level level : levels_to_test()) {
      simd::force_level_for_testing(level);
      for (unsigned threads : {1u, 2u, 8u}) {
        const par::ParRun run = par::run_par_coloring(
            g, par::ParAlgorithm::kJpl, opts_for(order, threads));
        EXPECT_EQ(run.colors, ref.colors)
            << order_name(order) << "/" << simd::level_name(level) << "/"
            << threads << "t";
        EXPECT_EQ(run.iterations, ref.iterations)
            << order_name(order) << "/" << simd::level_name(level) << "/"
            << threads << "t";
      }
    }
  }
}

TEST(ReorderPipelineTest, RandomOrderIsSeedDeterministic) {
  const Csr g = make_erdos_renyi_gnm(3000, 18000, 11);
  const par::ParRun a = par::run_par_coloring(
      g, par::ParAlgorithm::kJpl, opts_for(Order::kRandom, 2, 42));
  const par::ParRun b = par::run_par_coloring(
      g, par::ParAlgorithm::kJpl, opts_for(Order::kRandom, 2, 42));
  EXPECT_EQ(a.colors, b.colors);
}

}  // namespace
}  // namespace gcg
