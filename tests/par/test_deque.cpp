// Chase–Lev deque and StealPool: sequential semantics plus a concurrent
// pop/steal stress test asserting every item is delivered exactly once.
#include "par/deque.hpp"
#include "par/steal_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/narrow.hpp"

namespace gcg::par {
namespace {

TEST(WorkStealingDequeTest, OwnerLifoThiefFifo) {
  WorkStealingDeque<int> dq(8);
  dq.push_bottom(1);
  dq.push_bottom(2);
  dq.push_bottom(3);
  EXPECT_EQ(dq.size_estimate(), 3);
  auto stolen = dq.steal();  // oldest item
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(*stolen, 1);
  auto popped = dq.pop_bottom();  // newest item
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 3);
  EXPECT_EQ(*dq.pop_bottom(), 2);
  EXPECT_FALSE(dq.pop_bottom().has_value());
  EXPECT_FALSE(dq.steal().has_value());
}

TEST(WorkStealingDequeTest, ReserveRoundsUpAndResetEmpties) {
  WorkStealingDeque<int> dq(5);
  EXPECT_EQ(dq.capacity(), 8u);
  dq.push_bottom(42);
  dq.reset();
  EXPECT_FALSE(dq.pop_bottom().has_value());
  EXPECT_EQ(dq.size_estimate(), 0);
}

TEST(WorkStealingDequeTest, ConcurrentPopAndStealDeliverEachItemOnce) {
  // The determinism-free heart of the backend: one owner popping, several
  // thieves stealing, every item surfacing exactly once.
  constexpr int kItems = 20'000;
  constexpr int kThieves = 3;
  WorkStealingDeque<int> dq(kItems);
  for (int i = 0; i < kItems; ++i) dq.push_bottom(i);

  std::vector<std::atomic<int>> seen(kItems);
  std::atomic<int> delivered{0};

  auto thief = [&] {
    while (delivered.load(std::memory_order_acquire) < kItems) {
      if (auto v = dq.steal()) {
        seen[to_unsigned(*v)].fetch_add(1);
        delivered.fetch_add(1, std::memory_order_acq_rel);
      } else {
        std::this_thread::yield();
      }
    }
  };
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) thieves.emplace_back(thief);

  // Owner pops from the bottom until its end meets the thieves'.
  while (delivered.load(std::memory_order_acquire) < kItems) {
    if (auto v = dq.pop_bottom()) {
      seen[to_unsigned(*v)].fetch_add(1);
      delivered.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  for (auto& t : thieves) t.join();

  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[to_unsigned(i)].load(), 1) << "item " << i;
  }
}

TEST(StealPoolTest, AcquireDrainsEverythingThroughPopsAndSteals) {
  StealPool pool(4);
  const auto chunks = make_chunks(640, 10);
  pool.fill(deal_blocked(chunks, 4));
  Xoshiro256ss rng(7);
  std::vector<int> seen(chunks.size(), 0);
  // Worker 3 does all the draining: its own block first, then steals.
  while (!pool.drained()) {
    if (auto c = pool.acquire(3, VictimPolicy::kRandom, rng)) {
      ++seen[c->begin / 10];
    }
  }
  for (int s : seen) ASSERT_EQ(s, 1);
  EXPECT_GT(pool.stats().steal_hits, 0u);
  EXPECT_EQ(pool.stats().pops + pool.stats().chunks_stolen, chunks.size());
}

TEST(StealPoolTest, EveryVictimPolicyDrains) {
  for (VictimPolicy policy :
       {VictimPolicy::kRandom, VictimPolicy::kRichest, VictimPolicy::kRing}) {
    StealPool pool(3);
    pool.fill(deal_round_robin(make_chunks(120, 10), 3));
    Xoshiro256ss rng(11);
    std::uint32_t got = 0;
    while (!pool.drained()) {
      if (pool.acquire(0, policy, rng)) ++got;
    }
    EXPECT_EQ(got, 12u) << victim_policy_name(policy);
  }
}

TEST(StealPoolTest, NodeAwareStealingDrainsUnderEveryPolicy) {
  // Two fake nodes, two workers each: the split victim lists must still
  // hand out every chunk exactly once under every policy.
  for (VictimPolicy policy :
       {VictimPolicy::kRandom, VictimPolicy::kRichest, VictimPolicy::kRing}) {
    StealPool pool(4);
    pool.set_worker_nodes({0, 0, 1, 1});
    pool.fill(deal_round_robin(make_chunks(160, 10), 4));
    Xoshiro256ss rng(5);
    std::uint32_t got = 0;
    while (!pool.drained()) {
      if (pool.acquire(0, policy, rng)) ++got;
    }
    EXPECT_EQ(got, 16u) << victim_policy_name(policy);
  }
}

TEST(StealPoolTest, NodeAwareRingStealsLocalVictimFirst) {
  // Thief 0 shares node 0 with worker 1; workers 2 and 3 are remote. With
  // both a local and a remote victim loaded, the ring policy must take
  // the local one first and only then cross nodes.
  StealPool pool(4);
  pool.set_worker_nodes({0, 0, 1, 1});
  const Chunk local{0, 10}, remote{10, 20};
  pool.fill({{}, {local}, {remote}, {}});
  Xoshiro256ss rng(3);
  const auto first = pool.steal(0, VictimPolicy::kRing, rng);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, local);
  const auto second = pool.steal(0, VictimPolicy::kRing, rng);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, remote);
  EXPECT_TRUE(pool.drained());
}

TEST(StealPoolTest, SingleNodeAssignmentLeavesBehaviorUnchanged) {
  // All workers on one node: set_worker_nodes must be a no-op (no split
  // lists), so this is exactly the legacy drain.
  StealPool pool(3);
  pool.set_worker_nodes({0, 0, 0});
  pool.fill(deal_round_robin(make_chunks(90, 10), 3));
  Xoshiro256ss rng(9);
  std::uint32_t got = 0;
  while (!pool.drained()) {
    if (pool.acquire(1, VictimPolicy::kRing, rng)) ++got;
  }
  EXPECT_EQ(got, 9u);
}

TEST(StealPoolTest, ConcurrentWorkersDeliverEveryChunkOnce) {
  constexpr unsigned kWorkers = 4;
  StealPool pool(kWorkers);
  const auto chunks = make_chunks(4096, 4);
  pool.fill(deal_blocked(chunks, kWorkers));
  std::vector<std::atomic<int>> seen(chunks.size());

  std::vector<std::thread> team;
  for (unsigned w = 0; w < kWorkers; ++w) {
    team.emplace_back([&, w] {
      Xoshiro256ss rng(100 + w);
      while (!pool.drained()) {
        if (auto c = pool.acquire(w, VictimPolicy::kRandom, rng)) {
          seen[c->begin / 4].fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : team) t.join();

  for (std::size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "chunk " << i;
  }
  EXPECT_EQ(pool.stats().pops + pool.stats().chunks_stolen, chunks.size());
}

TEST(StealPoolTest, StatsAccumulateAcrossFillsUntilReset) {
  StealPool pool(2);
  Xoshiro256ss rng(1);
  pool.fill(deal_blocked(make_chunks(20, 10), 2));
  while (!pool.drained()) pool.acquire(0, VictimPolicy::kRing, rng);
  const auto first = pool.stats();
  pool.fill(deal_blocked(make_chunks(20, 10), 2));
  while (!pool.drained()) pool.acquire(0, VictimPolicy::kRing, rng);
  EXPECT_EQ(pool.stats().pops + pool.stats().chunks_stolen,
            2 * (first.pops + first.chunks_stolen));
  pool.reset_stats();
  EXPECT_EQ(pool.stats().pops, 0u);
  EXPECT_EQ(pool.stats().steal_attempts, 0u);
}

}  // namespace
}  // namespace gcg::par
