#include "par/pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "util/narrow.hpp"

namespace gcg::par {
namespace {

TEST(ThreadPoolTest, SizeMatchesRequest) {
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  EXPECT_EQ(ThreadPool(3).size(), 3u);
  EXPECT_GE(ThreadPool(0).size(), 1u);  // hardware concurrency
}

TEST(ThreadPoolTest, RunExecutesBodyOncePerWorker) {
  for (unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(threads);
    pool.run([&](unsigned w) { hits[w].fetch_add(1); });
    for (unsigned w = 0; w < threads; ++w) {
      EXPECT_EQ(hits[w].load(), 1) << "worker " << w << " of " << threads;
    }
  }
}

TEST(ThreadPoolTest, RunIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const std::uint32_t n = 10'000;
    std::vector<std::atomic<int>> seen(n);
    pool.parallel_for(n, 64, [&](std::uint32_t b, std::uint32_t e, unsigned) {
      for (std::uint32_t i = b; i < e; ++i) seen[i].fetch_add(1);
    });
    for (std::uint32_t i = 0; i < n; ++i) {
      ASSERT_EQ(seen[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, 16, [&](std::uint32_t, std::uint32_t, unsigned) {
    ++calls;  // must not run
  });
  EXPECT_EQ(calls, 0);

  std::atomic<std::uint32_t> sum{0};
  pool.parallel_for(3, 1000, [&](std::uint32_t b, std::uint32_t e, unsigned) {
    for (std::uint32_t i = b; i < e; ++i) sum.fetch_add(i + 1);
  });
  EXPECT_EQ(sum.load(), 6u);  // 1+2+3, grain larger than range
}

// Build an inclusive prefix-sum array (size n+1, prefix[0] = 0) from
// per-item weights, the shape parallel_for_edges expects (CSR row
// offsets are exactly this for degree weights).
std::vector<std::uint64_t> prefix_of(const std::vector<std::uint64_t>& w) {
  std::vector<std::uint64_t> prefix(w.size() + 1, 0);
  std::partial_sum(w.begin(), w.end(), prefix.begin() + 1);
  return prefix;
}

TEST(ThreadPoolTest, ParallelForEdgesCoversSkewedWeightsExactlyOnce) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    // One huge item in the middle, zero-weight items at both ends — the
    // shapes naive chunking drops or double-visits.
    std::vector<std::uint64_t> weights(1000, 1);
    weights[0] = 0;
    weights[500] = 100'000;
    weights[998] = 0;
    weights[999] = 0;  // zero-weight tail after the last heavy item
    const auto prefix = prefix_of(weights);
    std::vector<std::atomic<int>> seen(weights.size());
    pool.parallel_for_edges(
        static_cast<std::uint32_t>(weights.size()), prefix.data(), 256,
        [&](std::uint32_t b, std::uint32_t e, unsigned) {
          for (std::uint32_t i = b; i < e; ++i) seen[i].fetch_add(1);
        });
    for (std::size_t i = 0; i < weights.size(); ++i) {
      ASSERT_EQ(seen[i].load(), 1) << "index " << i << " @" << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForEdgesIsolatesHeavyItems) {
  ThreadPool pool(4);
  const std::uint64_t grain = 64;
  std::vector<std::uint64_t> weights(100, 1);
  weights[50] = 10'000;  // far above the grain weight
  const auto prefix = prefix_of(weights);
  std::atomic<std::uint64_t> surplus{~std::uint64_t{0}};
  pool.parallel_for_edges(
      100, prefix.data(), grain,
      [&](std::uint32_t b, std::uint32_t e, unsigned) {
        if (b <= 50 && 50 < e) {
          // Light weight sharing the heavy item's chunk, on either side.
          surplus.store((prefix[50] - prefix[b]) + (prefix[e] - prefix[51]));
        }
      });
  // Edge-balanced splitting must not glue more than ~a grain's worth of
  // light items onto the chunk holding the heavy one.
  EXPECT_LT(surplus.load(), 2 * grain);
}

TEST(ThreadPoolTest, ParallelForEdgesHandlesAllZeroAndEmpty) {
  ThreadPool pool(2);
  std::vector<std::uint64_t> weights(10, 0);  // isolated vertices
  const auto prefix = prefix_of(weights);
  std::vector<std::atomic<int>> seen(10);
  pool.parallel_for_edges(10, prefix.data(), 512,
                          [&](std::uint32_t b, std::uint32_t e, unsigned) {
                            for (std::uint32_t i = b; i < e; ++i) {
                              seen[i].fetch_add(1);
                            }
                          });
  for (int i = 0; i < 10; ++i) ASSERT_EQ(seen[to_unsigned(i)].load(), 1);

  const std::uint64_t empty_prefix[] = {0};
  int calls = 0;
  pool.parallel_for_edges(0, empty_prefix, 512,
                          [&](std::uint32_t, std::uint32_t, unsigned) {
                            ++calls;  // must not run
                          });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, WorkerNodesCoverEveryWorkerWithinTopology) {
  ThreadPool pool(5);
  const auto& nodes = pool.worker_nodes();
  ASSERT_EQ(nodes.size(), pool.size());
  for (unsigned w = 0; w < pool.size(); ++w) {
    EXPECT_EQ(pool.node_of(w), nodes[w]);
    EXPECT_LT(nodes[w], pool.num_nodes());
  }
  EXPECT_GE(pool.num_nodes(), 1u);
}

TEST(ThreadPoolTest, FakeNumaTopologySpreadsWorkersAcrossNodes) {
  // GCG_NUMA_FAKE_NODES is read at pool construction; a fabricated 2-node
  // topology must split the workers without pinning (topology not real)
  // and without changing what the pool computes.
  setenv("GCG_NUMA_FAKE_NODES", "2", 1);
  ThreadPool pool(4);
  unsetenv("GCG_NUMA_FAKE_NODES");
  EXPECT_EQ(pool.num_nodes(), 2u);
  EXPECT_FALSE(pool.topology().real);
  const auto& nodes = pool.worker_nodes();
  EXPECT_EQ(std::count(nodes.begin(), nodes.end(), 0u), 2);
  EXPECT_EQ(std::count(nodes.begin(), nodes.end(), 1u), 2);

  std::atomic<int> ran{0};
  pool.run([&](unsigned) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

}  // namespace
}  // namespace gcg::par
