#include "par/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gcg::par {
namespace {

TEST(ThreadPoolTest, SizeMatchesRequest) {
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  EXPECT_EQ(ThreadPool(3).size(), 3u);
  EXPECT_GE(ThreadPool(0).size(), 1u);  // hardware concurrency
}

TEST(ThreadPoolTest, RunExecutesBodyOncePerWorker) {
  for (unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(threads);
    pool.run([&](unsigned w) { hits[w].fetch_add(1); });
    for (unsigned w = 0; w < threads; ++w) {
      EXPECT_EQ(hits[w].load(), 1) << "worker " << w << " of " << threads;
    }
  }
}

TEST(ThreadPoolTest, RunIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const std::uint32_t n = 10'000;
    std::vector<std::atomic<int>> seen(n);
    pool.parallel_for(n, 64, [&](std::uint32_t b, std::uint32_t e, unsigned) {
      for (std::uint32_t i = b; i < e; ++i) seen[i].fetch_add(1);
    });
    for (std::uint32_t i = 0; i < n; ++i) {
      ASSERT_EQ(seen[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, 16, [&](std::uint32_t, std::uint32_t, unsigned) {
    ++calls;  // must not run
  });
  EXPECT_EQ(calls, 0);

  std::atomic<std::uint32_t> sum{0};
  pool.parallel_for(3, 1000, [&](std::uint32_t b, std::uint32_t e, unsigned) {
    for (std::uint32_t i = b; i < e; ++i) sum.fetch_add(i + 1);
  });
  EXPECT_EQ(sum.load(), 6u);  // 1+2+3, grain larger than range
}

}  // namespace
}  // namespace gcg::par
