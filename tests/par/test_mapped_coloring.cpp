// Mapped-vs-heap bit-identity: the same coloring algorithm, seed, and
// thread count must produce the exact same color array whether the Csr
// owns its arrays or borrows them from an mmap'ed .gbin v2 file — the
// ownership seam may not leak into results. JPL is deterministic at any
// thread count for a fixed seed; speculative only at 1 thread (conflict
// resolution is timing-dependent in parallel), so multi-thread
// speculative runs are checked for validity instead.
#include "par/runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "check/coloring.hpp"
#include "graph/gen/suite.hpp"
#include "par/pool.hpp"
#include "store/mapped_graph.hpp"
#include "store/writer.hpp"

namespace gcg {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

struct Fixture {
  Csr heap;
  std::shared_ptr<const store::MappedGraph> handle;  // pins the mapping

  const Csr& mapped() const { return handle->graph(); }
};

Fixture make_fixture(const std::string& tag) {
  Fixture fx;
  fx.heap = make_suite_graph("kron-like", {.scale = 0.03, .seed = 11}).graph;
  const std::string path = temp_path("mapped_color_" + tag + ".gbin");
  store::write_gbin_v2(path, fx.heap);
  fx.handle = store::MappedGraph::open(path);
  std::remove(path.c_str());  // mapping survives the unlink (POSIX)
  EXPECT_TRUE(fx.handle->is_mapped());
  EXPECT_TRUE(fx.handle->graph().is_view());
  return fx;
}

par::ParOptions opts_for(unsigned threads) {
  par::ParOptions o;
  o.seed = 42;
  o.threads = threads;
  return o;
}

class MappedJplIdentity : public ::testing::TestWithParam<unsigned> {};

TEST_P(MappedJplIdentity, BitIdenticalToHeapRun) {
  const unsigned threads = GetParam();
  const Fixture fx = make_fixture("jpl" + std::to_string(threads));

  const par::ParRun heap_run = par::run_par_coloring(
      fx.heap, par::ParAlgorithm::kJpl, opts_for(threads));
  const par::ParRun mapped_run = par::run_par_coloring(
      fx.mapped(), par::ParAlgorithm::kJpl, opts_for(threads));

  EXPECT_EQ(heap_run.num_colors, mapped_run.num_colors);
  EXPECT_EQ(heap_run.colors, mapped_run.colors);
  EXPECT_TRUE(check::is_valid_coloring(fx.heap, mapped_run.colors));
}

INSTANTIATE_TEST_SUITE_P(Threads, MappedJplIdentity,
                         ::testing::Values(1u, 2u, 8u));

TEST(MappedColoring, SpeculativeBitIdenticalSingleThread) {
  const Fixture fx = make_fixture("spec1");
  const par::ParRun heap_run = par::run_par_coloring(
      fx.heap, par::ParAlgorithm::kSpeculative, opts_for(1));
  const par::ParRun mapped_run = par::run_par_coloring(
      fx.mapped(), par::ParAlgorithm::kSpeculative, opts_for(1));
  EXPECT_EQ(heap_run.colors, mapped_run.colors);
}

TEST(MappedColoring, SpeculativeValidOnMappedViewMultiThread) {
  const Fixture fx = make_fixture("spec4");
  const par::ParRun run = par::run_par_coloring(
      fx.mapped(), par::ParAlgorithm::kSpeculative, opts_for(4));
  EXPECT_GT(run.num_colors, 0);
  EXPECT_TRUE(check::is_valid_coloring(fx.heap, run.colors));
}

TEST(MappedColoring, StealValidOnMappedView) {
  const Fixture fx = make_fixture("steal4");
  const par::ParRun run = par::run_par_coloring(
      fx.mapped(), par::ParAlgorithm::kSteal, opts_for(4));
  EXPECT_GT(run.num_colors, 0);
  EXPECT_TRUE(check::is_valid_coloring(fx.heap, run.colors));
}

TEST(MappedColoring, WarmupOnPoolThenColor) {
  // Parallel page-touch warmup must not disturb results (it only reads).
  const Fixture fx = make_fixture("warm");
  par::ThreadPool pool(2);
  EXPECT_GT(fx.handle->warmup(&pool), 0u);
  const par::ParRun warm = par::run_par_coloring(
      fx.mapped(), par::ParAlgorithm::kJpl, opts_for(2));
  const par::ParRun heap_run = par::run_par_coloring(
      fx.heap, par::ParAlgorithm::kJpl, opts_for(2));
  EXPECT_EQ(warm.colors, heap_run.colors);
}

}  // namespace
}  // namespace gcg
