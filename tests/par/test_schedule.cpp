// Degree-aware scheduling tests: the edge-balanced partitioner, the hub
// cooperation path, and the bitset first-fit scratch must not change any
// observable coloring — JPL stays bit-identical across thread counts,
// schedules, and hub settings, and the speculative/steal algorithms stay
// valid and complete on skewed degree distributions.
#include <gtest/gtest.h>

#include <random>

#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/random.hpp"
#include "graph/gen/special.hpp"
#include "par/detail/driver.hpp"
#include "par/runner.hpp"

namespace gcg {
namespace {

// Hub processing needs degree > threshold; these skewed generators all
// have hubs far above kHubOn while most vertices sit well below it.
constexpr std::uint32_t kHubOn = 32;        // forces the cooperative path
constexpr std::uint32_t kHubOff = 0xFFFFFFFFu;  // disables it outright

struct Combo {
  unsigned threads;
  par::Schedule schedule;
  std::uint32_t hub_threshold;
};

std::vector<Combo> all_combos() {
  std::vector<Combo> out;
  for (unsigned threads : {1u, 2u, 8u}) {
    for (par::Schedule s :
         {par::Schedule::kVertexChunks, par::Schedule::kEdgeBalanced}) {
      for (std::uint32_t hub : {kHubOn, kHubOff}) {
        out.push_back({threads, s, hub});
      }
    }
  }
  return out;
}

std::string describe(const Combo& c) {
  return std::to_string(c.threads) + "t/" + par::schedule_name(c.schedule) +
         "/hub=" + std::to_string(c.hub_threshold);
}

par::ParOptions opts_for(const Combo& c, std::uint64_t seed = 1) {
  par::ParOptions o;
  o.threads = c.threads;
  o.seed = seed;
  o.schedule = c.schedule;
  o.hub_degree_threshold = c.hub_threshold;
  return o;
}

// --- schedule names ---------------------------------------------------------

TEST(ScheduleTest, NamesRoundTripAndRejectUnknown) {
  for (par::Schedule s :
       {par::Schedule::kVertexChunks, par::Schedule::kEdgeBalanced}) {
    EXPECT_EQ(par::schedule_from_name(par::schedule_name(s)), s);
  }
  EXPECT_THROW(par::schedule_from_name("bogus"), std::invalid_argument);
}

// --- JPL bit-identical parity ----------------------------------------------

TEST(ScheduleParityTest, JplIsInvariantAcrossSchedulesThreadsAndHubs) {
  // RMAT gives the power-law skew the scheduler exists for. The baseline
  // is the most conservative configuration; every combination must
  // reproduce its colors AND its iteration count exactly.
  const Csr g = make_rmat(12, 8, {}, 99);
  Combo base{1u, par::Schedule::kVertexChunks, kHubOff};
  const par::ParRun ref =
      par::run_par_coloring(g, par::ParAlgorithm::kJpl, opts_for(base));
  ASSERT_TRUE(check::is_valid_coloring(g, ref.colors));

  for (const Combo& c : all_combos()) {
    const par::ParRun run =
        par::run_par_coloring(g, par::ParAlgorithm::kJpl, opts_for(c));
    EXPECT_EQ(run.colors, ref.colors) << describe(c);
    EXPECT_EQ(run.iterations, ref.iterations) << describe(c);
  }
}

TEST(ScheduleParityTest, OneThreadSpeculativeStaysSequentialUnderAllKnobs) {
  // The 1-thread speculative ≡ sequential-greedy contract must survive
  // every schedule/hub setting (the hub path is defined to disengage on
  // one thread precisely to keep the natural processing order).
  const Csr g = make_barabasi_albert(4000, 6, 21);
  const SeqColoring seq = greedy_color(g, GreedyOrder::kNatural);
  for (par::Schedule s :
       {par::Schedule::kVertexChunks, par::Schedule::kEdgeBalanced}) {
    for (std::uint32_t hub : {kHubOn, kHubOff, 0u}) {
      Combo c{1u, s, hub};
      const par::ParRun run = par::run_par_coloring(
          g, par::ParAlgorithm::kSpeculative, opts_for(c));
      EXPECT_EQ(run.colors, seq.colors) << describe(c);
    }
  }
}

// --- validity on skewed graphs ----------------------------------------------

class ScheduleValidityTest
    : public ::testing::TestWithParam<par::ParAlgorithm> {};

TEST_P(ScheduleValidityTest, ValidAndCompleteOnSkewedGraphs) {
  const struct {
    const char* name;
    Csr graph;
  } cases[] = {
      {"rmat", make_rmat(11, 8, {}, 5)},
      {"ba", make_barabasi_albert(3000, 8, 5)},
      {"star", make_star(5000)},
      {"gnm", make_erdos_renyi_gnm(3000, 24000, 5)},
  };
  for (const auto& tc : cases) {
    for (const Combo& c : all_combos()) {
      const par::ParRun run =
          par::run_par_coloring(tc.graph, GetParam(), opts_for(c));
      EXPECT_TRUE(check::is_valid_coloring(tc.graph, run.colors))
          << tc.name << " " << describe(c) << ": "
          << check::verify_coloring(tc.graph, run.colors)->to_string();
      EXPECT_EQ(run.colors.size(), tc.graph.num_vertices()) << tc.name;
      EXPECT_EQ(run.num_colors, count_colors(run.colors))
          << tc.name << " " << describe(c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllParAlgorithms, ScheduleValidityTest,
                         ::testing::ValuesIn(par::all_par_algorithms()),
                         [](const auto& param_info) {
                           return std::string(
                               par_algorithm_name(param_info.param));
                         });

// --- hub engagement ----------------------------------------------------------

TEST(ScheduleHubTest, HubPathEngagesAndMatchesHubOffColoring) {
  // A star's center dwarfs the threshold, so the cooperative path must
  // actually run (run.hub_vertices counts hub phase visits) — and, for
  // JPL, produce exactly the coloring of the hub-off run.
  const Csr g = make_star(20'000);
  Combo on{4u, par::Schedule::kEdgeBalanced, kHubOn};
  Combo off{4u, par::Schedule::kEdgeBalanced, kHubOff};
  const par::ParRun hub =
      par::run_par_coloring(g, par::ParAlgorithm::kJpl, opts_for(on));
  const par::ParRun flat =
      par::run_par_coloring(g, par::ParAlgorithm::kJpl, opts_for(off));
  EXPECT_GT(hub.hub_vertices, 0u);
  EXPECT_EQ(flat.hub_vertices, 0u);
  EXPECT_EQ(hub.colors, flat.colors);
}

TEST(ScheduleHubTest, HubPathStaysOffOnOneThread) {
  const Csr g = make_star(20'000);
  Combo c{1u, par::Schedule::kEdgeBalanced, kHubOn};
  const par::ParRun run =
      par::run_par_coloring(g, par::ParAlgorithm::kSpeculative, opts_for(c));
  EXPECT_EQ(run.hub_vertices, 0u);
  EXPECT_TRUE(check::is_valid_coloring(g, run.colors));
}

// --- bitset first-fit scratch ------------------------------------------------

// Reference first-fit: smallest color not used by any colored neighbour.
color_t naive_first_fit(const Csr& g, const std::vector<color_t>& colors,
                        vid_t v) {
  std::vector<char> used(g.degree(v) + 2, 0);
  for (vid_t u : g.neighbors(v)) {
    const color_t c = colors[u];
    if (c != kUncolored && static_cast<std::size_t>(c) < used.size()) {
      used[static_cast<std::size_t>(c)] = 1;
    }
  }
  color_t c = 0;
  while (used[static_cast<std::size_t>(c)]) ++c;
  return c;
}

TEST(FirstFitScratchTest, BitsetMatchesNaiveOnRandomPartialColorings) {
  const Csr g = make_rmat(10, 8, {}, 13);
  par::detail::FirstFitScratch scratch(g.max_degree());
  std::mt19937_64 rng(7);
  std::vector<color_t> colors(g.num_vertices(), kUncolored);
  // Grow a random valid-ish partial coloring (values don't have to be a
  // proper coloring for first-fit equivalence — any assignment works).
  std::uniform_int_distribution<color_t> pick(0, 40);
  for (std::size_t round = 0; round < 4; ++round) {
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (rng() % 3 == 0) colors[v] = pick(rng);
    }
    for (vid_t v = 0; v < g.num_vertices(); v += 17) {
      EXPECT_EQ(scratch.first_fit(g, colors, v), naive_first_fit(g, colors, v))
          << "vertex " << v << " round " << round;
    }
  }
}

TEST(FirstFitScratchTest, StampFallbackCoversDegreesAboveTheBitsetCap) {
  // The star center's degree (5000) exceeds kBitsetColorCap (4096), so
  // this exercises the stamp fallback on the same API.
  const Csr g = make_star(5000);
  ASSERT_GT(g.max_degree() + 1, par::detail::FirstFitScratch::kBitsetColorCap);
  par::detail::FirstFitScratch scratch(g.max_degree());
  std::vector<color_t> colors(g.num_vertices(), kUncolored);
  for (vid_t leaf = 1; leaf <= 4500; ++leaf) {
    colors[leaf] = static_cast<color_t>(leaf - 1);  // leaves use 0..4499
  }
  EXPECT_EQ(scratch.first_fit(g, colors, 0), 4500);
  EXPECT_EQ(scratch.first_fit(g, colors, 0), naive_first_fit(g, colors, 0));
}

TEST(FirstFitScratchTest, StampFallbackStartWordHintStaysExact) {
  // Regression for the quadratic rescan above the bitset cap: repeated
  // fallback calls on a hub restart their scan at the hinted word — but
  // the hint is only an accelerator, never allowed to change the answer,
  // including when previously-forbidden low colors are freed again.
  const Csr g = make_star(5000);
  ASSERT_GT(g.max_degree() + 1, par::detail::FirstFitScratch::kBitsetColorCap);
  par::detail::FirstFitScratch scratch(g.max_degree());
  std::vector<color_t> colors(g.num_vertices(), kUncolored);
  for (vid_t leaf = 1; leaf <= 4500; ++leaf) {
    colors[leaf] = static_cast<color_t>(leaf - 1);  // leaves use 0..4499
  }

  std::uint32_t hint = 0;
  EXPECT_EQ(scratch.first_fit(g, colors, 0, &hint), 4500);
  EXPECT_EQ(hint, 4500u / 64u);  // answer word, proven saturated below

  // Steady state: the hinted rescan must reproduce the exact answer.
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(scratch.first_fit(g, colors, 0, &hint),
              naive_first_fit(g, colors, 0))
        << repeat;
  }

  // Free a low color: the words below the hint are no longer saturated,
  // so the hint must be ignored (not trusted) and the freed color found.
  colors[101] = kUncolored;  // color 100 is now available again
  EXPECT_EQ(scratch.first_fit(g, colors, 0, &hint), 100);
  EXPECT_EQ(scratch.first_fit(g, colors, 0, &hint),
            naive_first_fit(g, colors, 0));

  // Re-taking the color restores the original answer.
  colors[101] = 100;
  EXPECT_EQ(scratch.first_fit(g, colors, 0, &hint), 4500);
}

// --- FrontierAppender wraparound guard ---------------------------------------

#if GTEST_HAS_DEATH_TEST && !defined(__SANITIZE_THREAD__)
TEST(FrontierAppenderDeathTest, OversizedClaimTripsTheAssert) {
  // The old bounds check computed at+count in 32 bits: a huge claim
  // wrapped past zero and "passed". The 64-bit check must abort.
  std::vector<vid_t> out(8);
  par::detail::FrontierAppender app{out};
  app.claim(8);
  EXPECT_DEATH(app.claim(0xFFFFFFF8u), "invariant");
}
#endif

}  // namespace
}  // namespace gcg
