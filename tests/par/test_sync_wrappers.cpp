// Runtime semantics of the capability-annotated sync wrappers
// (util/sync.hpp): Mutex/LockGuard mutual exclusion, CondVar wakeups and
// deadline waits, try_lock. The TSan CI lane builds test_par, so these
// threads run under race detection — the wrappers must not only satisfy
// clang's static analysis, they must actually lock.
//
// The escape-hatch case at the bottom deliberately uses a raw std::mutex
// behind a justified `lint: allow(raw-mutex)` — it pins down that the
// escape syntax keeps working AND that an escaped mutex still
// synchronizes (the static analysis just can't see it). The lint
// self-test case src/par/raw_mutex_escape_no_reason covers the flip
// side: the same escape without a reason string is rejected.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>  // lint: allow(raw-mutex) escape-hatch regression below
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace gcg {
namespace {

TEST(SyncWrappers, LockGuardExcludesConcurrentIncrements) {
  sync::Mutex mu;
  std::uint64_t counter = 0;  // guarded by mu (local: no GUARDED_BY)
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> team;
  team.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        sync::LockGuard lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : team) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(SyncWrappers, TryLockRefusesWhileHeldAndWorksAfter) {
  sync::Mutex mu;
  mu.lock();
  std::thread prober([&] {
    EXPECT_FALSE(mu.try_lock());  // held by the main thread
  });
  prober.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncWrappers, CondVarPingPong) {
  sync::Mutex mu;
  sync::CondVar cv;
  int turn = 0;  // guarded by mu; 0 = main's turn, 1 = echo's turn
  constexpr int kRounds = 100;
  std::thread echo([&] {
    for (int i = 0; i < kRounds; ++i) {
      sync::LockGuard lock(mu);
      while (turn != 1) cv.wait(mu);
      turn = 0;
      cv.notify_all();
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    sync::LockGuard lock(mu);
    while (turn != 0) cv.wait(mu);
    turn = 1;
    cv.notify_all();
  }
  echo.join();
  EXPECT_EQ(turn, 0);  // echo consumed the last handoff
}

TEST(SyncWrappers, WaitUntilTimesOutWhenNeverNotified) {
  sync::Mutex mu;
  sync::CondVar cv;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  sync::LockGuard lock(mu);
  // No notifier exists: every return before the deadline is spurious,
  // and eventually wait_until must report timeout (false).
  bool timed_out = false;
  while (std::chrono::steady_clock::now() < deadline + std::chrono::seconds(5)) {
    if (!cv.wait_until(mu, deadline)) {
      timed_out = true;
      break;
    }
  }
  EXPECT_TRUE(timed_out);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(SyncWrappers, WaitForDeliversNotification) {
  sync::Mutex mu;
  sync::CondVar cv;
  bool ready = false;  // guarded by mu
  std::thread notifier([&] {
    sync::LockGuard lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    sync::LockGuard lock(mu);
    while (!ready) {
      // Generous bound: the test only requires eventual delivery, not a
      // sharp timeout (that is WaitUntilTimesOutWhenNeverNotified).
      if (!cv.wait_for(mu, std::chrono::seconds(30))) break;
    }
    EXPECT_TRUE(ready);
  }
  notifier.join();
}

TEST(SyncWrappers, EscapedRawMutexStillSynchronizes) {
  // lint: allow-next-line(raw-mutex) TSan regression for the escape hatch
  std::mutex raw_mu;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> team;
  team.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        // lint: allow-next-line(raw-mutex) TSan regression for the escape hatch
        std::lock_guard<std::mutex> lock(raw_mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : team) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace gcg
