// Product-mode guarantee of the sync:: seam (util/sync.hpp): without
// GCG_MC_MODEL the aliases ARE the std:: types — same template, same
// layout, zero overhead — so migrating the concurrent core onto the seam
// cannot change product codegen. This TU is compiled exactly like the
// production code (no GCG_MC_MODEL), so these asserts hold for the
// instantiations the par/svc objects actually use.
#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>  // lint: allow(sync-seam) comparing the seam against std
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <type_traits>

#include "util/stress.hpp"

namespace gcg {
namespace {

// The instantiations the migrated code uses: deque cursors
// (atomic<int64_t>), pool/appender cursors (uint32_t/uint64_t), the
// frontier's shared early-exit flag (bool), the job cancel flag, and the
// stress-hook pointer.
static_assert(std::is_same_v<sync::atomic<int>, std::atomic<int>>);
static_assert(std::is_same_v<sync::atomic<std::int64_t>, std::atomic<std::int64_t>>);
static_assert(std::is_same_v<sync::atomic<std::uint32_t>, std::atomic<std::uint32_t>>);
static_assert(std::is_same_v<sync::atomic<std::uint64_t>, std::atomic<std::uint64_t>>);
static_assert(std::is_same_v<sync::atomic<bool>, std::atomic<bool>>);
static_assert(
    std::is_same_v<sync::atomic<const StressHook*>, std::atomic<const StressHook*>>);
static_assert(std::is_same_v<sync::atomic_flag, std::atomic_flag>);
static_assert(std::is_same_v<sync::mutex, std::mutex>);
static_assert(std::is_same_v<sync::condition_variable, std::condition_variable>);

TEST(SyncSeamTest, FenceAndPrimitivesAreUsableInProductMode) {
  sync::atomic<int> a{1};
  // order: seq_cst — exercising the seam's fence wrapper, not a protocol.
  sync::atomic_thread_fence(std::memory_order_seq_cst);
  EXPECT_EQ(a.load(), 1);

  sync::mutex m;
  sync::condition_variable cv;
  {
    std::lock_guard<sync::mutex> lock(m);
    a.store(2);
  }
  cv.notify_all();  // no waiters; proves the alias is the real cv
  EXPECT_EQ(a.load(), 2);
}

}  // namespace
}  // namespace gcg
