// Seeded violation: eid_t (64-bit arc id) silently assigned to vid_t
// (32-bit vertex id) — the exact 32/64 seam util/narrow.hpp exists for.
#include "graph/csr.hpp"

gcg::vid_t f(gcg::eid_t arcs) {
  gcg::vid_t v = arcs;  // implicit u64 -> u32
  return v;
}
