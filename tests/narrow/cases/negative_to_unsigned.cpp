// Seeded violation: possibly-negative difference used as a count.
#include <cstddef>

std::size_t f(std::ptrdiff_t diff) {
  std::size_t n = diff;  // implicit signed -> unsigned
  return n;
}
