// Seeded violation: 64-bit first-fit word arithmetic assigned straight
// into color_t (int) — the driver.hpp pattern without narrow<color_t>.
#include <cstddef>

#include "coloring/common.hpp"

gcg::color_t f(std::size_t word, int bit) {
  gcg::color_t c = word * 64 + static_cast<unsigned>(bit);  // size_t -> int
  return c;
}
