// Seeded violation: file-format u64 section offset handed to seekg
// arithmetic as a signed stream offset implicitly.
#include <cstdint>
#include <ios>

std::streamoff f(std::uint64_t section_offset) {
  std::streamoff off = section_offset;  // implicit u64 -> i64
  return off;
}
