// Seeded violation: u64 seed pushed into the int64 JSON transport
// implicitly — must be narrow_cast with a `// lossy:` justification.
#include <cstdint>

std::int64_t f(std::uint64_t seed) {
  std::int64_t wire = seed;  // implicit u64 -> i64
  return wire;
}
