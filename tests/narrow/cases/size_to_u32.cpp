// Seeded violation: container size truncated into a 32-bit worklist
// cursor without narrow<> — the frontier/appender pattern gone wrong.
#include <cstdint>
#include <vector>

std::uint32_t f(const std::vector<int>& worklist) {
  std::uint32_t n = worklist.size();  // implicit size_t -> u32
  return n;
}
