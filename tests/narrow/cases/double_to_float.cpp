// Seeded violation: silent double -> float precision loss
// (-Werror=float-conversion).
float f(double x) {
  float y = x;  // implicit double -> float
  return y;
}
