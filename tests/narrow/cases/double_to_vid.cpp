// Seeded violation: scaled vertex count truncated from double without
// the checked seam — the gen: scale-overflow bug class.
#include "graph/csr.hpp"

gcg::vid_t f(double scaled_count) {
  gcg::vid_t n = scaled_count;  // implicit double -> u32
  return n;
}
