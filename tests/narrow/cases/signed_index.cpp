// Seeded violation: indexing with a raw color_t (int) — sign conversion
// at the subscript; the blessed spelling is sizes[to_unsigned(c)].
#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

std::uint32_t f(const std::vector<std::uint32_t>& sizes, gcg::color_t c) {
  return sizes[c];  // implicit int -> size_t
}
