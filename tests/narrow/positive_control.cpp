// Positive control for the integer-conversion negative-compile suite:
// every blessed idiom from util/narrow.hpp, compiled with the same
// promoted -Werror=conversion flags the FAIL cases run under. If this
// file stops compiling, the suite's failures say nothing.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "coloring/common.hpp"
#include "graph/csr.hpp"
#include "util/narrow.hpp"

namespace {

// Checked narrowing across the vid/eid seam.
gcg::vid_t vertex_from_index(std::size_t i) { return gcg::narrow<gcg::vid_t>(i); }

// Widening spelled as brace-init: the compiler itself proves no loss.
gcg::eid_t arcs_from_count(gcg::vid_t n) { return gcg::eid_t{n} * 5; }

// Sign flips via the named helpers.
std::ptrdiff_t signed_count(std::size_t n) { return gcg::to_signed(n); }
std::size_t index_of(std::ptrdiff_t d) { return gcg::to_unsigned(d); }

// Documented-lossy transport (the protocol's u64-seed-as-int64 path).
std::int64_t seed_to_wire(std::uint64_t seed) {
  // lossy: two's-complement transport, cast back bit-for-bit on receive
  return gcg::narrow_cast<std::int64_t>(seed);
}

// Float -> integer through the checked seam.
gcg::vid_t count_from_scale(double scaled) { return gcg::narrow<gcg::vid_t>(scaled); }

// Indexing a vector with a known-non-negative signed color.
std::uint32_t class_size(const std::vector<std::uint32_t>& sizes,
                         gcg::color_t c) {
  return sizes[gcg::to_unsigned(c)];
}

}  // namespace

int gcg_narrow_positive_anchor() {
  std::vector<std::uint32_t> sizes(4, 0);
  return static_cast<int>(vertex_from_index(1) + arcs_from_count(2) +
                          gcg::to_unsigned(signed_count(3)) + index_of(4) +
                          gcg::to_unsigned(seed_to_wire(5)) +
                          count_from_scale(6.0) + class_size(sizes, 3));
}
