#include "graph/io/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

bool same_graph(const Csr& a, const Csr& b) {
  return a.num_vertices() == b.num_vertices() &&
         std::equal(a.row_offsets().begin(), a.row_offsets().end(),
                    b.row_offsets().begin(), b.row_offsets().end()) &&
         std::equal(a.col_indices().begin(), a.col_indices().end(),
                    b.col_indices().begin(), b.col_indices().end());
}

class IoRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(IoRoundTrip, PetersenSurvives) {
  const Csr g = make_petersen();
  const std::string ext = GetParam();
  std::stringstream buf;
  if (ext == "el") {
    save_edge_list(buf, g);
    EXPECT_TRUE(same_graph(g, load_edge_list(buf)));
  } else if (ext == "mtx") {
    save_matrix_market(buf, g);
    EXPECT_TRUE(same_graph(g, load_matrix_market(buf)));
  } else if (ext == "col") {
    save_dimacs_color(buf, g);
    EXPECT_TRUE(same_graph(g, load_dimacs_color(buf)));
  } else {
    save_binary(buf, g);
    EXPECT_TRUE(same_graph(g, load_binary(buf)));
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, IoRoundTrip,
                         ::testing::Values("el", "mtx", "col", "gbin"));

TEST(IoRoundTrip, LargerGraphAllFormats) {
  const Csr g = make_rmat(8, 4, {}, 3);
  for (const char* ext : {"el", "mtx", "col", "gbin"}) {
    const std::string path =
        std::string(::testing::TempDir()) + "/gcg_io_test." + ext;
    save_graph(path, g);
    const Csr back = load_graph(path);
    EXPECT_TRUE(same_graph(g, back)) << ext;
    std::remove(path.c_str());
  }
}

TEST(EdgeList, SkipsCommentsAndBlank) {
  std::istringstream in("# comment\n% other comment\n\n0 1\n1 2\n");
  const Csr g = load_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeList, MinVerticesPadsIsolated) {
  std::istringstream in("0 1\n");
  const Csr g = load_edge_list(in, 10);
  EXPECT_EQ(g.num_vertices(), 10u);
}

TEST(EdgeList, RejectsGarbage) {
  std::istringstream in("0 x\n");
  EXPECT_THROW(load_edge_list(in), std::runtime_error);
}

TEST(MatrixMarket, AcceptsGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 3\n"
      "1 2 0.5\n"
      "2 3 1.5\n"
      "3 1 2.0\n");
  const Csr g = load_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);  // symmetrized triangle
  EXPECT_TRUE(g.is_symmetric());
}

TEST(MatrixMarket, AcceptsSymmetricPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "2 2 1\n"
      "2 1\n");
  const Csr g = load_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(MatrixMarket, DropsDiagonal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "1 2\n");
  EXPECT_EQ(load_matrix_market(in).num_edges(), 1u);
}

TEST(MatrixMarket, RejectsNonSquare) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 3 1\n"
      "1 2\n");
  EXPECT_THROW(load_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::istringstream in("3 3 0\n");
  EXPECT_THROW(load_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfRangeIndex) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 5\n");
  EXPECT_THROW(load_matrix_market(in), std::runtime_error);
}

TEST(Dimacs, ParsesStandardInstance) {
  std::istringstream in(
      "c sample\n"
      "p edge 4 3\n"
      "e 1 2\n"
      "e 2 3\n"
      "e 3 4\n");
  const Csr g = load_dimacs_color(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Dimacs, RejectsEdgeBeforeProblem) {
  std::istringstream in("e 1 2\n");
  EXPECT_THROW(load_dimacs_color(in), std::runtime_error);
}

TEST(Dimacs, RejectsVertexZero) {
  std::istringstream in("p edge 2 1\ne 0 1\n");
  EXPECT_THROW(load_dimacs_color(in), std::runtime_error);
}

TEST(Binary, RejectsBadMagic) {
  std::istringstream in("NOTMAGIC and then some");
  EXPECT_THROW(load_binary(in), std::runtime_error);
}

TEST(Binary, RejectsTruncation) {
  const Csr g = make_petersen();
  std::stringstream buf;
  save_binary(buf, g);
  std::string data = buf.str();
  data.resize(data.size() / 2);
  std::istringstream in(data);
  EXPECT_THROW(load_binary(in), std::runtime_error);
}

TEST(Dispatch, UnknownExtensionThrows) {
  EXPECT_THROW(load_graph("/tmp/whatever.xyz"), std::runtime_error);
  EXPECT_THROW(save_graph("/tmp/whatever.xyz", make_petersen()),
               std::runtime_error);
}

TEST(Dispatch, MissingFileThrows) {
  EXPECT_THROW(load_graph("/nonexistent/nope.mtx"), std::runtime_error);
}

}  // namespace
}  // namespace gcg
