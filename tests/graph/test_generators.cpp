#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/gen/grid.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/random.hpp"
#include "graph/gen/smallworld.hpp"
#include "graph/gen/special.hpp"
#include "graph/stats.hpp"
#include "util/rng.hpp"

namespace gcg {
namespace {

void expect_clean(const Csr& g) {
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(g.has_no_self_loops());
  EXPECT_TRUE(g.is_sorted_unique());
}

TEST(Grid2d, SizesAndDegrees) {
  const Csr g = make_grid2d(5, 4);
  EXPECT_EQ(g.num_vertices(), 20u);
  // Edge count: 4*(5-1) horizontal rows... (w-1)*h + w*(h-1).
  EXPECT_EQ(g.num_edges(), 4u * 4 + 5u * 3);
  expect_clean(g);
  EXPECT_EQ(g.degree(0), 2u);       // corner
  EXPECT_EQ(g.degree(2), 3u);       // top edge
  EXPECT_EQ(g.degree(1 * 5 + 2), 4u);  // interior
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(Grid2d, EightConnectedDegrees) {
  const Csr g = make_grid2d(4, 4, /*eight_connected=*/true);
  expect_clean(g);
  EXPECT_EQ(g.max_degree(), 8u);
  EXPECT_EQ(g.degree(0), 3u);  // corner: right, down, diag
}

TEST(Grid2d, SingleRowIsPath) {
  const Csr g = make_grid2d(6, 1);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Grid3d, SizesAndDegrees) {
  const Csr g = make_grid3d(3, 3, 3);
  EXPECT_EQ(g.num_vertices(), 27u);
  EXPECT_EQ(g.num_edges(), 3u * (2 * 3 * 3));  // 3 axes, 2*9 per axis
  expect_clean(g);
  EXPECT_EQ(g.max_degree(), 6u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(13), 6u);  // center
}

TEST(ErdosRenyiGnm, ExactEdgeCount) {
  const Csr g = make_erdos_renyi_gnm(100, 500, 7);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
  expect_clean(g);
}

TEST(ErdosRenyiGnm, DeterministicInSeed) {
  const Csr a = make_erdos_renyi_gnm(50, 100, 3);
  const Csr b = make_erdos_renyi_gnm(50, 100, 3);
  EXPECT_TRUE(std::equal(a.col_indices().begin(), a.col_indices().end(),
                         b.col_indices().begin(), b.col_indices().end()));
  const Csr c = make_erdos_renyi_gnm(50, 100, 4);
  EXPECT_FALSE(std::equal(a.col_indices().begin(), a.col_indices().end(),
                          c.col_indices().begin(), c.col_indices().end()));
}

TEST(ErdosRenyiGnm, CompleteGraphLimit) {
  const Csr g = make_erdos_renyi_gnm(10, 45, 1);
  EXPECT_EQ(g.num_edges(), 45u);
  EXPECT_EQ(g.max_degree(), 9u);
}

TEST(ErdosRenyiGnp, EdgeCountNearExpectation) {
  const vid_t n = 2000;
  const double p = 0.005;
  const Csr g = make_erdos_renyi_gnp(n, p, 11);
  expect_clean(g);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_GT(g.num_edges(), expected * 0.85);
  EXPECT_LT(g.num_edges(), expected * 1.15);
}

TEST(ErdosRenyiGnp, ZeroProbabilityIsEmpty) {
  const Csr g = make_erdos_renyi_gnp(100, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(RandomGeometric, DegreeMatchesDensity) {
  const vid_t n = 4000;
  const double target_degree = 10.0;
  const double radius = std::sqrt(target_degree / (3.14159265 * n));
  const Csr g = make_random_geometric(n, radius, 5);
  expect_clean(g);
  EXPECT_GT(g.avg_degree(), target_degree * 0.8);
  EXPECT_LT(g.avg_degree(), target_degree * 1.2);
}

TEST(RandomGeometric, MatchesBruteForceSmall) {
  // Grid bucketing must agree with the O(n^2) definition.
  const vid_t n = 200;
  const double radius = 0.13;
  const Csr g = make_random_geometric(n, radius, 9);
  // Brute-force recompute point set with the same RNG stream.
  Xoshiro256ss rng(9);
  std::vector<double> xs(n), ys(n);
  for (vid_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform();
    ys[i] = rng.uniform();
  }
  eid_t expected = 0;
  for (vid_t i = 0; i < n; ++i) {
    for (vid_t j = i + 1; j < n; ++j) {
      const double dx = xs[i] - xs[j], dy = ys[i] - ys[j];
      if (dx * dx + dy * dy <= radius * radius) ++expected;
    }
  }
  EXPECT_EQ(g.num_edges(), expected);
}

TEST(BarabasiAlbert, SizeAndMinDegree) {
  const vid_t n = 2000;
  const vid_t m = 4;
  const Csr g = make_barabasi_albert(n, m, 13);
  EXPECT_EQ(g.num_vertices(), n);
  expect_clean(g);
  // Every non-seed vertex attaches m edges; dedup can only merge pairs
  // between seed vertices, so min degree >= m.
  for (vid_t v = 0; v < n; ++v) ASSERT_GE(g.degree(v), m);
}

TEST(BarabasiAlbert, ProducesHubs) {
  const Csr g = make_barabasi_albert(5000, 4, 17);
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.max_degree, 10 * s.avg_degree);  // heavy tail
  EXPECT_GT(s.degree_cv, 1.0);
}

TEST(Rmat, SizeAndSkew) {
  const Csr g = make_rmat(12, 8, {}, 19);
  EXPECT_EQ(g.num_vertices(), 1u << 12);
  expect_clean(g);
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.degree_cv, 1.0);  // kron-like skew
  // Dedup/self-loops remove some of the 8*2^12 sampled edges.
  EXPECT_GT(g.num_edges(), (1u << 12) * 4u);
}

TEST(Rmat, ScrambleChangesIdsNotShape) {
  RmatParams noscramble;
  noscramble.scramble_ids = false;
  const Csr a = make_rmat(10, 4, noscramble, 23);
  const Csr b = make_rmat(10, 4, {}, 23);
  EXPECT_EQ(a.num_arcs(), b.num_arcs());
  // Degree *distribution* must match exactly (scramble is a relabeling).
  std::vector<vid_t> da, db;
  for (vid_t v = 0; v < a.num_vertices(); ++v) {
    da.push_back(a.degree(v));
    db.push_back(b.degree(v));
  }
  std::sort(da.begin(), da.end());
  std::sort(db.begin(), db.end());
  EXPECT_EQ(da, db);
}

TEST(WattsStrogatz, RingWhenBetaZero) {
  const Csr g = make_watts_strogatz(20, 4, 0.0, 1);
  expect_clean(g);
  for (vid_t v = 0; v < 20; ++v) ASSERT_EQ(g.degree(v), 4u);
}

TEST(WattsStrogatz, RewiringPreservesEdgeBudget) {
  const Csr g = make_watts_strogatz(1000, 6, 0.2, 3);
  expect_clean(g);
  // Rewiring can create duplicates that dedup removes; stay close.
  EXPECT_GT(g.num_edges(), 1000u * 3 * 95 / 100);
  EXPECT_LE(g.num_edges(), 1000u * 3);
}

// --- special graphs ------------------------------------------------------

TEST(Special, PathCycleStar) {
  EXPECT_EQ(make_path(10).num_edges(), 9u);
  EXPECT_EQ(make_cycle(10).num_edges(), 10u);
  const Csr star = make_star(7);
  EXPECT_EQ(star.degree(0), 7u);
  EXPECT_EQ(star.num_edges(), 7u);
}

TEST(Special, CompleteAndBipartite) {
  const Csr k5 = make_complete(5);
  EXPECT_EQ(k5.num_edges(), 10u);
  EXPECT_EQ(k5.max_degree(), 4u);
  const Csr k23 = make_complete_bipartite(2, 3);
  EXPECT_EQ(k23.num_edges(), 6u);
  EXPECT_EQ(k23.degree(0), 3u);
  EXPECT_EQ(k23.degree(2), 2u);
}

TEST(Special, BinaryTreeAndEmpty) {
  const Csr t = make_binary_tree(7);
  EXPECT_EQ(t.num_edges(), 6u);
  EXPECT_EQ(t.degree(0), 2u);
  EXPECT_EQ(t.degree(1), 3u);
  const Csr e = make_empty(5);
  EXPECT_EQ(e.num_vertices(), 5u);
  EXPECT_EQ(e.num_arcs(), 0u);
}

TEST(Special, PetersenInvariants) {
  const Csr p = make_petersen();
  EXPECT_EQ(p.num_vertices(), 10u);
  EXPECT_EQ(p.num_edges(), 15u);
  for (vid_t v = 0; v < 10; ++v) ASSERT_EQ(p.degree(v), 3u);  // 3-regular
  expect_clean(p);
}

// --- parameterized determinism sweep --------------------------------------

class GeneratorDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorDeterminism, AllGeneratorsStableAcrossCalls) {
  const std::uint64_t seed = GetParam();
  auto same = [](const Csr& a, const Csr& b) {
    return a.num_vertices() == b.num_vertices() &&
           std::equal(a.row_offsets().begin(), a.row_offsets().end(),
                      b.row_offsets().begin(), b.row_offsets().end()) &&
           std::equal(a.col_indices().begin(), a.col_indices().end(),
                      b.col_indices().begin(), b.col_indices().end());
  };
  EXPECT_TRUE(same(make_erdos_renyi_gnm(64, 128, seed),
                   make_erdos_renyi_gnm(64, 128, seed)));
  EXPECT_TRUE(same(make_barabasi_albert(128, 3, seed),
                   make_barabasi_albert(128, 3, seed)));
  EXPECT_TRUE(same(make_rmat(7, 4, {}, seed), make_rmat(7, 4, {}, seed)));
  EXPECT_TRUE(same(make_watts_strogatz(64, 4, 0.3, seed),
                   make_watts_strogatz(64, 4, 0.3, seed)));
  EXPECT_TRUE(same(make_random_geometric(128, 0.15, seed),
                   make_random_geometric(128, 0.15, seed)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorDeterminism,
                         ::testing::Values(1, 2, 42, 1234567, 0xdeadbeef));

}  // namespace
}  // namespace gcg
