#include "graph/builder.hpp"

#include <gtest/gtest.h>

namespace gcg {
namespace {

TEST(GraphBuilder, SymmetrizesByDefault) {
  const Csr g = GraphBuilder::from_edges(3, {{0, 1}});
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(GraphBuilder, DedupsParallelEdges) {
  const Csr g = GraphBuilder::from_edges(2, {{0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, RemovesSelfLoops) {
  const Csr g = GraphBuilder::from_edges(2, {{0, 0}, {0, 1}, {1, 1}});
  EXPECT_TRUE(g.has_no_self_loops());
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, KeepsSelfLoopsWhenAsked) {
  BuildOptions opts;
  opts.remove_self_loops = false;
  opts.symmetrize = false;
  const Csr g = GraphBuilder::from_edges(2, {{0, 0}}, opts);
  EXPECT_FALSE(g.has_no_self_loops());
}

TEST(GraphBuilder, DirectedWhenSymmetrizeOff) {
  BuildOptions opts;
  opts.symmetrize = false;
  const Csr g = GraphBuilder::from_edges(3, {{0, 1}, {1, 2}}, opts);
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_FALSE(g.is_symmetric());
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(GraphBuilder, SortedNeighborsAlways) {
  const Csr g = GraphBuilder::from_edges(5, {{4, 0}, {4, 2}, {4, 1}, {4, 3}});
  const auto nb = g.neighbors(4);
  for (std::size_t i = 1; i < nb.size(); ++i) EXPECT_LT(nb[i - 1], nb[i]);
}

TEST(GraphBuilder, BuildConsumesEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_EQ(b.pending_edges(), 1u);
  const Csr g1 = b.build();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(b.pending_edges(), 0u);
  const Csr g2 = b.build();  // second build: empty graph, same n
  EXPECT_EQ(g2.num_edges(), 0u);
  EXPECT_EQ(g2.num_vertices(), 3u);
}

TEST(GraphBuilderDeathTest, RejectsOutOfRangeVertex) {
  GraphBuilder b(2);
  EXPECT_DEATH(b.add_edge(0, 2), "precondition");
}

TEST(GraphBuilder, LargeStarDegrees) {
  GraphBuilder b(1001);
  for (vid_t v = 1; v <= 1000; ++v) b.add_edge(0, v);
  const Csr g = b.build();
  EXPECT_EQ(g.degree(0), 1000u);
  for (vid_t v = 1; v <= 1000; ++v) ASSERT_EQ(g.degree(v), 1u);
}

}  // namespace
}  // namespace gcg
