#include "graph/gen/suite.hpp"

#include <gtest/gtest.h>

#include "graph/stats.hpp"

namespace gcg {
namespace {

constexpr double kTestScale = 0.05;  // keep suite tests quick

TEST(Suite, AllNamesBuildCleanGraphs) {
  SuiteOptions opts;
  opts.scale = kTestScale;
  for (const auto& name : suite_names()) {
    const SuiteEntry e = make_suite_graph(name, opts);
    EXPECT_EQ(e.name, name);
    EXPECT_FALSE(e.family.empty());
    EXPECT_FALSE(e.stands_for.empty());
    EXPECT_GT(e.graph.num_vertices(), 0u) << name;
    EXPECT_TRUE(e.graph.is_symmetric()) << name;
    EXPECT_TRUE(e.graph.has_no_self_loops()) << name;
  }
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(make_suite_graph("no-such-graph"), std::invalid_argument);
}

TEST(Suite, MakeSuiteReturnsCanonicalOrder) {
  SuiteOptions opts;
  opts.scale = kTestScale;
  const auto suite = make_suite(opts);
  const auto names = suite_names();
  ASSERT_EQ(suite.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(suite[i].name, names[i]);
  }
}

TEST(Suite, SkewOrderingMatchesDesign) {
  // The suite spans regular -> skewed: grids must have (near-)zero degree
  // CV, kron/citation must be strongly skewed.
  SuiteOptions opts;
  opts.scale = kTestScale;
  const auto ecology = compute_stats(make_suite_graph("ecology-like", opts).graph);
  const auto kron = compute_stats(make_suite_graph("kron-like", opts).graph);
  const auto citation = compute_stats(make_suite_graph("citation-like", opts).graph);
  EXPECT_LT(ecology.degree_cv, 0.3);
  EXPECT_GT(kron.degree_cv, 1.0);
  EXPECT_GT(citation.degree_cv, 1.0);
}

TEST(Suite, ScaleGrowsTheGraphs) {
  SuiteOptions small;
  small.scale = kTestScale;
  SuiteOptions bigger;
  bigger.scale = kTestScale * 4;
  const auto a = make_suite_graph("er-like", small);
  const auto b = make_suite_graph("er-like", bigger);
  EXPECT_GT(b.graph.num_vertices(), a.graph.num_vertices() * 3);
}

TEST(Suite, DeterministicForSeedAndScale) {
  SuiteOptions opts;
  opts.scale = kTestScale;
  opts.seed = 17;
  const auto a = make_suite_graph("kron-like", opts);
  const auto b = make_suite_graph("kron-like", opts);
  EXPECT_TRUE(std::equal(a.graph.col_indices().begin(),
                         a.graph.col_indices().end(),
                         b.graph.col_indices().begin(),
                         b.graph.col_indices().end()));
}

}  // namespace
}  // namespace gcg
