#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/builder.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"
#include "graph/partition.hpp"

namespace gcg {
namespace {

TEST(InducedSubgraph, KeepsSelectedEdgesOnly) {
  // Square 0-1-2-3-0 plus diagonal 0-2; keep {0,1,2}.
  const Csr g = GraphBuilder::from_edges(
      4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const Subgraph s = induced_subgraph(g, {true, true, true, false});
  EXPECT_EQ(s.graph.num_vertices(), 3u);
  EXPECT_EQ(s.graph.num_edges(), 3u);  // 0-1, 1-2, 0-2
  EXPECT_EQ(s.to_old.size(), 3u);
  EXPECT_EQ(s.to_new[3], Subgraph::kNotInSubgraph);
  // Mapping is consistent both ways.
  for (vid_t nv = 0; nv < 3; ++nv) EXPECT_EQ(s.to_new[s.to_old[nv]], nv);
}

TEST(InducedSubgraph, EmptyAndFullSelections) {
  const Csr g = make_cycle(6);
  const Subgraph none = induced_subgraph(g, std::vector<bool>(6, false));
  EXPECT_EQ(none.graph.num_vertices(), 0u);
  const Subgraph all = induced_subgraph(g, std::vector<bool>(6, true));
  EXPECT_EQ(all.graph.num_vertices(), 6u);
  EXPECT_EQ(all.graph.num_edges(), 6u);
}

TEST(KCore, PeelsTreesCompletely) {
  const Csr g = make_binary_tree(31);
  EXPECT_EQ(k_core(g, 2).graph.num_vertices(), 0u);
  EXPECT_EQ(k_core(g, 1).graph.num_vertices(), 31u);
}

TEST(KCore, CycleWithPendantVertex) {
  // Triangle 0-1-2 plus pendant 3 attached to 0.
  const Csr g = GraphBuilder::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  const Subgraph core = k_core(g, 2);
  EXPECT_EQ(core.graph.num_vertices(), 3u);
  EXPECT_EQ(core.graph.num_edges(), 3u);
  EXPECT_EQ(core.to_new[3], Subgraph::kNotInSubgraph);
}

TEST(KCore, CascadingPeel) {
  // Path 3-4-5 hanging off a triangle: removing 5 reduces 4 below k, etc.
  const Csr g = GraphBuilder::from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}});
  const Subgraph core = k_core(g, 2);
  EXPECT_EQ(core.graph.num_vertices(), 3u);
}

TEST(KCore, BaGraphCoreMatchesDegeneracyBound) {
  const Csr g = make_barabasi_albert(300, 3, 7);
  // m=3 attachment: the 3-core is (almost) everything, the 4-core smaller.
  const Subgraph c3 = k_core(g, 3);
  EXPECT_GT(c3.graph.num_vertices(), 250u);
  for (vid_t v = 0; v < c3.graph.num_vertices(); ++v) {
    ASSERT_GE(c3.graph.degree(v), 3u);
  }
}

TEST(LargestComponent, PicksTheBiggest) {
  GraphBuilder b(10);
  // Component A: 0-1-2-3 path; component B: 4-5; isolated: 6..9.
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(4, 5);
  const Subgraph s = largest_component(b.build());
  EXPECT_EQ(s.graph.num_vertices(), 4u);
  EXPECT_EQ(s.graph.num_edges(), 3u);
}

TEST(LargestComponent, ConnectedGraphIsIdentity) {
  const Csr g = make_cycle(8);
  const Subgraph s = largest_component(g);
  EXPECT_EQ(s.graph.num_vertices(), 8u);
  for (vid_t v = 0; v < 8; ++v) EXPECT_EQ(s.to_old[v], v);
}

// --- RangeSubgraph (sharding extraction) -----------------------------------

// Brute-force reference check of one extracted range against the parent
// graph: local adjacency (order preserved, ids shifted by begin), ghost
// set, boundary flags, and cut count must all agree.
void expect_range_matches(const Csr& g, const RangeSubgraph& s) {
  ASSERT_EQ(s.graph.num_vertices(), s.end - s.begin);
  std::set<vid_t> ghost_ref;
  eid_t cut = 0;
  vid_t boundary = 0;
  for (vid_t v = s.begin; v < s.end; ++v) {
    std::vector<vid_t> local_ref;
    bool touches_out = false;
    for (const vid_t u : g.neighbors(v)) {
      if (u >= s.begin && u < s.end) {
        local_ref.push_back(u - s.begin);
      } else {
        ghost_ref.insert(u);
        ++cut;
        touches_out = true;
      }
    }
    const auto local = s.graph.neighbors(v - s.begin);
    ASSERT_TRUE(std::equal(local.begin(), local.end(), local_ref.begin(),
                           local_ref.end()))
        << "adjacency mismatch at old vertex " << v;
    EXPECT_EQ(s.is_boundary[v - s.begin] != 0, touches_out);
    if (touches_out) ++boundary;
  }
  EXPECT_EQ(s.cut_arcs, cut);
  EXPECT_EQ(s.num_boundary, boundary);
  ASSERT_EQ(s.ghosts.size(), ghost_ref.size());
  EXPECT_TRUE(std::equal(s.ghosts.begin(), s.ghosts.end(),
                         ghost_ref.begin()));  // ascending + deduplicated
}

TEST(RangeSubgraph, CycleRangeBasics) {
  const Csr g = make_cycle(8);
  const RangeSubgraph s = extract_subgraph(g, 2, 5);
  EXPECT_EQ(s.graph.num_vertices(), 3u);
  EXPECT_EQ(s.graph.num_edges(), 2u);  // 2-3 and 3-4, locally 0-1 and 1-2
  EXPECT_EQ(s.ghosts, (std::vector<vid_t>{1, 5}));
  EXPECT_EQ(s.num_boundary, 2u);  // 2 and 4; the middle vertex is interior
  EXPECT_EQ(s.is_boundary[1], 0u);
  EXPECT_EQ(s.cut_arcs, 2u);
  expect_range_matches(g, s);
}

TEST(RangeSubgraph, EmptyAndFullRanges) {
  const Csr g = make_cycle(6);
  const RangeSubgraph none = extract_subgraph(g, 3, 3);
  EXPECT_EQ(none.graph.num_vertices(), 0u);
  EXPECT_EQ(none.cut_arcs, 0u);
  EXPECT_TRUE(none.ghosts.empty());
  const RangeSubgraph all = extract_subgraph(g, 0, 6);
  EXPECT_EQ(all.graph.num_vertices(), 6u);
  EXPECT_EQ(all.graph.num_edges(), 6u);
  EXPECT_EQ(all.num_boundary, 0u);
  EXPECT_TRUE(all.ghosts.empty());
  expect_range_matches(g, all);
}

TEST(RangeSubgraph, HubInsideRangeSeesAllLeavesAsGhosts) {
  const Csr g = make_star(6);  // hub 0, leaves 1..6
  const RangeSubgraph hub = extract_subgraph(g, 0, 1);
  EXPECT_EQ(hub.graph.num_vertices(), 1u);
  EXPECT_EQ(hub.graph.num_edges(), 0u);  // ghosts are NOT local edges
  EXPECT_EQ(hub.ghosts.size(), 6u);
  EXPECT_EQ(hub.cut_arcs, 6u);
  EXPECT_EQ(hub.num_boundary, 1u);
  const RangeSubgraph leaves = extract_subgraph(g, 1, 4);
  EXPECT_EQ(leaves.graph.num_edges(), 0u);
  EXPECT_EQ(leaves.ghosts, (std::vector<vid_t>{0}));
  EXPECT_EQ(leaves.num_boundary, 3u);  // every leaf touches the outside hub
  expect_range_matches(g, leaves);
}

// The sharding acceptance case: an rmat graph's hubs have neighbors in
// every shard of an edge-balanced cut, so the boundary/ghost mapping
// must stay exact under a severely asymmetric degree distribution.
TEST(RangeSubgraph, RmatHubsSplitAcrossEdgeBalancedCut) {
  const Csr g = make_rmat(9, 16, {}, 11);
  const Partition p = partition_edge_balanced(g, 4);
  ASSERT_EQ(p.num_shards(), 4u);

  eid_t total_cut = 0;
  for (unsigned s = 0; s < p.num_shards(); ++s) {
    const RangeSubgraph sub = extract_subgraph(g, p.begin(s), p.end(s));
    expect_range_matches(g, sub);
    total_cut += sub.cut_arcs;
  }
  // Per-shard cuts must add up to the partition-level cut.
  EXPECT_EQ(total_cut, analyze_partition(g, p).cut_arcs);

  // The top hub's adjacency spans the cut: it must be flagged boundary
  // in its own shard, with its out-of-range neighbors all in the ghosts.
  vid_t hub = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }
  ASSERT_GT(g.degree(hub), 64u) << "rmat generator lost its skew";
  const unsigned hs = p.shard_of(hub);
  const RangeSubgraph sub = extract_subgraph(g, p.begin(hs), p.end(hs));
  EXPECT_EQ(sub.is_boundary[hub - sub.begin], 1u);
  for (const vid_t u : g.neighbors(hub)) {
    if (u < sub.begin || u >= sub.end) {
      EXPECT_TRUE(std::binary_search(sub.ghosts.begin(), sub.ghosts.end(), u));
    }
  }
}

}  // namespace
}  // namespace gcg
