#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

TEST(InducedSubgraph, KeepsSelectedEdgesOnly) {
  // Square 0-1-2-3-0 plus diagonal 0-2; keep {0,1,2}.
  const Csr g = GraphBuilder::from_edges(
      4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const Subgraph s = induced_subgraph(g, {true, true, true, false});
  EXPECT_EQ(s.graph.num_vertices(), 3u);
  EXPECT_EQ(s.graph.num_edges(), 3u);  // 0-1, 1-2, 0-2
  EXPECT_EQ(s.to_old.size(), 3u);
  EXPECT_EQ(s.to_new[3], Subgraph::kNotInSubgraph);
  // Mapping is consistent both ways.
  for (vid_t nv = 0; nv < 3; ++nv) EXPECT_EQ(s.to_new[s.to_old[nv]], nv);
}

TEST(InducedSubgraph, EmptyAndFullSelections) {
  const Csr g = make_cycle(6);
  const Subgraph none = induced_subgraph(g, std::vector<bool>(6, false));
  EXPECT_EQ(none.graph.num_vertices(), 0u);
  const Subgraph all = induced_subgraph(g, std::vector<bool>(6, true));
  EXPECT_EQ(all.graph.num_vertices(), 6u);
  EXPECT_EQ(all.graph.num_edges(), 6u);
}

TEST(KCore, PeelsTreesCompletely) {
  const Csr g = make_binary_tree(31);
  EXPECT_EQ(k_core(g, 2).graph.num_vertices(), 0u);
  EXPECT_EQ(k_core(g, 1).graph.num_vertices(), 31u);
}

TEST(KCore, CycleWithPendantVertex) {
  // Triangle 0-1-2 plus pendant 3 attached to 0.
  const Csr g = GraphBuilder::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  const Subgraph core = k_core(g, 2);
  EXPECT_EQ(core.graph.num_vertices(), 3u);
  EXPECT_EQ(core.graph.num_edges(), 3u);
  EXPECT_EQ(core.to_new[3], Subgraph::kNotInSubgraph);
}

TEST(KCore, CascadingPeel) {
  // Path 3-4-5 hanging off a triangle: removing 5 reduces 4 below k, etc.
  const Csr g = GraphBuilder::from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}});
  const Subgraph core = k_core(g, 2);
  EXPECT_EQ(core.graph.num_vertices(), 3u);
}

TEST(KCore, BaGraphCoreMatchesDegeneracyBound) {
  const Csr g = make_barabasi_albert(300, 3, 7);
  // m=3 attachment: the 3-core is (almost) everything, the 4-core smaller.
  const Subgraph c3 = k_core(g, 3);
  EXPECT_GT(c3.graph.num_vertices(), 250u);
  for (vid_t v = 0; v < c3.graph.num_vertices(); ++v) {
    ASSERT_GE(c3.graph.degree(v), 3u);
  }
}

TEST(LargestComponent, PicksTheBiggest) {
  GraphBuilder b(10);
  // Component A: 0-1-2-3 path; component B: 4-5; isolated: 6..9.
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(4, 5);
  const Subgraph s = largest_component(b.build());
  EXPECT_EQ(s.graph.num_vertices(), 4u);
  EXPECT_EQ(s.graph.num_edges(), 3u);
}

TEST(LargestComponent, ConnectedGraphIsIdentity) {
  const Csr g = make_cycle(8);
  const Subgraph s = largest_component(g);
  EXPECT_EQ(s.graph.num_vertices(), 8u);
  for (vid_t v = 0; v < 8; ++v) EXPECT_EQ(s.to_old[v], v);
}

}  // namespace
}  // namespace gcg
