#include "graph/reorder.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/builder.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"
#include "graph/stats.hpp"

namespace gcg {
namespace {

/// Check that `h` is exactly `g` relabeled through perm.
void expect_isomorphic_via(const Csr& g, const Csr& h,
                           const std::vector<vid_t>& perm) {
  ASSERT_EQ(g.num_vertices(), h.num_vertices());
  ASSERT_EQ(g.num_arcs(), h.num_arcs());
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    std::set<vid_t> expected;
    for (vid_t v : g.neighbors(u)) expected.insert(perm[v]);
    const auto nb = h.neighbors(perm[u]);
    const std::set<vid_t> actual(nb.begin(), nb.end());
    ASSERT_EQ(expected, actual) << "vertex " << u;
  }
}

TEST(Reorder, NaturalIsIdentity) {
  const Csr g = make_petersen();
  const auto perm = make_order(g, Order::kNatural);
  for (vid_t v = 0; v < 10; ++v) EXPECT_EQ(perm[v], v);
}

class ReorderIsomorphism : public ::testing::TestWithParam<Order> {};

TEST_P(ReorderIsomorphism, PermIsValidAndPreservesStructure) {
  const Csr g = make_barabasi_albert(300, 3, 5);
  const auto perm = make_order(g, GetParam(), 7);
  EXPECT_TRUE(is_permutation(perm, g.num_vertices()));
  const Csr h = apply_order(g, perm);
  expect_isomorphic_via(g, h, perm);
  EXPECT_TRUE(h.is_sorted_unique());
  EXPECT_TRUE(h.is_symmetric());
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, ReorderIsomorphism,
    ::testing::Values(Order::kNatural, Order::kRandom, Order::kDegreeDescending,
                      Order::kDegreeAscending, Order::kBfs, Order::kRcm),
    [](const auto& info) {
      std::string n = order_name(info.param);
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Reorder, DegreeDescendingSortsDegrees) {
  const Csr g = make_barabasi_albert(200, 2, 3);
  const Csr h = reorder(g, Order::kDegreeDescending);
  for (vid_t v = 1; v < h.num_vertices(); ++v) {
    ASSERT_GE(h.degree(v - 1), h.degree(v));
  }
}

TEST(Reorder, DegreeAscendingSortsDegrees) {
  const Csr g = make_barabasi_albert(200, 2, 3);
  const Csr h = reorder(g, Order::kDegreeAscending);
  for (vid_t v = 1; v < h.num_vertices(); ++v) {
    ASSERT_LE(h.degree(v - 1), h.degree(v));
  }
}

TEST(Reorder, RandomIsSeedDeterministic) {
  const Csr g = make_barabasi_albert(100, 2, 1);
  EXPECT_EQ(make_order(g, Order::kRandom, 5), make_order(g, Order::kRandom, 5));
  EXPECT_NE(make_order(g, Order::kRandom, 5), make_order(g, Order::kRandom, 6));
}

TEST(Reorder, BfsVisitsComponentContiguously) {
  // Two disjoint paths: BFS order must not interleave components.
  GraphBuilder b(6);
  b.add_edge(0, 2);
  b.add_edge(2, 4);
  b.add_edge(1, 3);
  b.add_edge(3, 5);
  const Csr g = b.build();
  const auto perm = make_order(g, Order::kBfs);
  // Component of 0 = {0,2,4} must occupy new ids {0,1,2}.
  std::set<vid_t> first_component{perm[0], perm[2], perm[4]};
  EXPECT_EQ(first_component, (std::set<vid_t>{0, 1, 2}));
}

TEST(Reorder, RcmReducesBandwidthOnPath) {
  // A path relabeled randomly has large bandwidth; RCM restores ~1.
  const Csr scrambled = reorder(make_path(64), Order::kRandom, 99);
  auto bandwidth = [](const Csr& g) {
    std::int64_t bw = 0;
    for (vid_t u = 0; u < g.num_vertices(); ++u) {
      for (vid_t v : g.neighbors(u)) {
        bw = std::max<std::int64_t>(bw, std::abs(static_cast<std::int64_t>(u) -
                                                 static_cast<std::int64_t>(v)));
      }
    }
    return bw;
  };
  const Csr fixed = reorder(scrambled, Order::kRcm);
  EXPECT_GT(bandwidth(scrambled), 8);
  EXPECT_LE(bandwidth(fixed), 2);
}

TEST(Reorder, IsPermutationRejectsBadInputs) {
  EXPECT_FALSE(is_permutation({0, 0}, 2));    // duplicate
  EXPECT_FALSE(is_permutation({0, 2}, 2));    // out of range
  EXPECT_FALSE(is_permutation({0}, 2));       // wrong size
  EXPECT_TRUE(is_permutation({1, 0}, 2));
}

TEST(Reorder, OrderNamesRoundTrip) {
  for (Order o : {Order::kNatural, Order::kRandom, Order::kDegreeDescending,
                  Order::kDegreeAscending, Order::kBfs, Order::kRcm}) {
    EXPECT_EQ(order_from_name(order_name(o)), o);
  }
  EXPECT_THROW(order_from_name("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace gcg
