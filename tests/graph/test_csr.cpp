#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.hpp"

namespace gcg {
namespace {

Csr triangle() {
  return GraphBuilder::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
}

TEST(Csr, EmptyGraph) {
  Csr g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(Csr, TriangleBasics) {
  const Csr g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (vid_t v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 2.0);
}

TEST(Csr, NeighborsAreSortedSpans) {
  const Csr g = triangle();
  const auto nb = g.neighbors(1);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 2u);
}

TEST(Csr, StructureChecks) {
  const Csr g = triangle();
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(g.has_no_self_loops());
  EXPECT_TRUE(g.is_sorted_unique());
}

TEST(Csr, DetectsAsymmetry) {
  // Directed arc 0->1 only.
  const Csr g(std::vector<eid_t>{0, 1, 1}, std::vector<vid_t>{1});
  EXPECT_FALSE(g.is_symmetric());
}

TEST(Csr, DetectsSelfLoop) {
  const Csr g(std::vector<eid_t>{0, 1}, std::vector<vid_t>{0});
  EXPECT_FALSE(g.has_no_self_loops());
}

TEST(Csr, DetectsUnsortedAndDuplicate) {
  const Csr unsorted(std::vector<eid_t>{0, 2, 2, 2}, std::vector<vid_t>{2, 1});
  EXPECT_FALSE(unsorted.is_sorted_unique());
  const Csr dup(std::vector<eid_t>{0, 2, 2, 2}, std::vector<vid_t>{1, 1});
  EXPECT_FALSE(dup.is_sorted_unique());
}

TEST(Csr, ValidateRejectsBadOffsets) {
  EXPECT_THROW(Csr(std::vector<eid_t>{1, 2}, std::vector<vid_t>{0, 0}),
               std::invalid_argument);
  EXPECT_THROW(Csr(std::vector<eid_t>{0, 2, 1}, std::vector<vid_t>{0}),
               std::invalid_argument);
  EXPECT_THROW(Csr(std::vector<eid_t>{0, 5}, std::vector<vid_t>{0}),
               std::invalid_argument);
}

TEST(Csr, ValidateRejectsOutOfRangeColumn) {
  EXPECT_THROW(Csr(std::vector<eid_t>{0, 1}, std::vector<vid_t>{7}),
               std::invalid_argument);
}

TEST(Csr, IsolatedVertices) {
  const Csr g(std::vector<eid_t>{0, 0, 0, 0}, std::vector<vid_t>{});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_TRUE(g.neighbors(1).empty());
}

}  // namespace
}  // namespace gcg
