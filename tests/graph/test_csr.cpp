#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/builder.hpp"

namespace gcg {
namespace {

Csr triangle() {
  return GraphBuilder::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
}

TEST(Csr, EmptyGraph) {
  Csr g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(Csr, TriangleBasics) {
  const Csr g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (vid_t v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 2.0);
}

TEST(Csr, NeighborsAreSortedSpans) {
  const Csr g = triangle();
  const auto nb = g.neighbors(1);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 2u);
}

TEST(Csr, StructureChecks) {
  const Csr g = triangle();
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(g.has_no_self_loops());
  EXPECT_TRUE(g.is_sorted_unique());
}

TEST(Csr, DetectsAsymmetry) {
  // Directed arc 0->1 only.
  const Csr g(std::vector<eid_t>{0, 1, 1}, std::vector<vid_t>{1});
  EXPECT_FALSE(g.is_symmetric());
}

TEST(Csr, DetectsSelfLoop) {
  const Csr g(std::vector<eid_t>{0, 1}, std::vector<vid_t>{0});
  EXPECT_FALSE(g.has_no_self_loops());
}

TEST(Csr, DetectsUnsortedAndDuplicate) {
  const Csr unsorted(std::vector<eid_t>{0, 2, 2, 2}, std::vector<vid_t>{2, 1});
  EXPECT_FALSE(unsorted.is_sorted_unique());
  const Csr dup(std::vector<eid_t>{0, 2, 2, 2}, std::vector<vid_t>{1, 1});
  EXPECT_FALSE(dup.is_sorted_unique());
}

TEST(Csr, ValidateRejectsBadOffsets) {
  EXPECT_THROW(Csr(std::vector<eid_t>{1, 2}, std::vector<vid_t>{0, 0}),
               std::invalid_argument);
  EXPECT_THROW(Csr(std::vector<eid_t>{0, 2, 1}, std::vector<vid_t>{0}),
               std::invalid_argument);
  EXPECT_THROW(Csr(std::vector<eid_t>{0, 5}, std::vector<vid_t>{0}),
               std::invalid_argument);
}

TEST(Csr, ValidateRejectsOutOfRangeColumn) {
  EXPECT_THROW(Csr(std::vector<eid_t>{0, 1}, std::vector<vid_t>{7}),
               std::invalid_argument);
}

TEST(Csr, IsolatedVertices) {
  const Csr g(std::vector<eid_t>{0, 0, 0, 0}, std::vector<vid_t>{});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_TRUE(g.neighbors(1).empty());
}

// ------------------------------------------------------- ownership seam

/// Externally anchored storage standing in for a file mapping.
struct Anchor {
  std::vector<eid_t> rows{0, 2, 4, 6};
  std::vector<vid_t> cols{1, 2, 0, 2, 0, 1};
};

Csr view_of(const std::shared_ptr<Anchor>& a) {
  return Csr::view(a->rows, a->cols, a);
}

TEST(CsrView, BorrowsWithoutCopying) {
  const auto a = std::make_shared<Anchor>();
  const Csr v = view_of(a);
  EXPECT_TRUE(v.is_view());
  EXPECT_EQ(v.heap_bytes(), 0u);
  EXPECT_EQ(v.num_vertices(), 3u);
  EXPECT_EQ(v.row_offsets().data(), a->rows.data());  // zero-copy: same bytes
  EXPECT_EQ(v.col_indices().data(), a->cols.data());
  EXPECT_NO_THROW(v.validate());
}

TEST(CsrView, OwningGraphIsNotAView) {
  const Csr g = triangle();
  EXPECT_FALSE(g.is_view());
  EXPECT_GT(g.heap_bytes(), 0u);
}

TEST(CsrView, CopyOfViewSharesStorageAndKeepalive) {
  const auto a = std::make_shared<Anchor>();
  const Csr v = view_of(a);
  const long before = a.use_count();
  const Csr copy = v;  // NOLINT: the copy IS the behavior under test
  EXPECT_TRUE(copy.is_view());
  EXPECT_EQ(copy.row_offsets().data(), v.row_offsets().data());
  EXPECT_EQ(a.use_count(), before + 1);  // copy holds its own anchor ref
}

TEST(CsrView, CopyOfOwningDeepCopies) {
  const Csr g = triangle();
  const Csr copy = g;
  EXPECT_FALSE(copy.is_view());
  EXPECT_NE(copy.row_offsets().data(), g.row_offsets().data());
  EXPECT_TRUE(std::equal(copy.col_indices().begin(), copy.col_indices().end(),
                         g.col_indices().begin(), g.col_indices().end()));
}

TEST(CsrView, MoveOfOwningTransfersWithoutCopying) {
  Csr g = triangle();
  const eid_t* rows_before = g.row_offsets().data();
  const Csr moved = std::move(g);
  EXPECT_EQ(moved.row_offsets().data(), rows_before);  // allocation moved
  EXPECT_FALSE(moved.is_view());
  EXPECT_NO_THROW(moved.validate());
}

TEST(CsrView, KeepaliveOutlivesLastHandle) {
  auto a = std::make_shared<Anchor>();
  Csr v = view_of(a);
  std::weak_ptr<Anchor> watch = a;
  a.reset();  // only the view anchors the storage now
  ASSERT_FALSE(watch.expired());
  EXPECT_NO_THROW(v.validate());  // storage still alive through the view
  v = Csr();                      // last handle gone
  EXPECT_TRUE(watch.expired());
}

TEST(CsrView, AssignViewOverOwningReleasesHeap) {
  const auto a = std::make_shared<Anchor>();
  Csr g = triangle();
  g = view_of(a);
  EXPECT_TRUE(g.is_view());
  EXPECT_EQ(g.heap_bytes(), 0u);
  EXPECT_EQ(g.row_offsets().data(), a->rows.data());
}

TEST(CsrView, RejectsMalformedShape) {
  const auto a = std::make_shared<Anchor>();
  // Empty rows: no n+1 prefix array.
  EXPECT_THROW((void)Csr::view(std::span<const eid_t>{}, a->cols, a),
               std::invalid_argument);
  // rows.back() must equal |cols|.
  const std::vector<eid_t> short_rows{0, 2};
  EXPECT_THROW((void)Csr::view(short_rows, a->cols, a),
               std::invalid_argument);
}

}  // namespace
}  // namespace gcg
