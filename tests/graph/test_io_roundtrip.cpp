// File-level round-trip tests for the two formats the coloring service
// leans on: .gbin (fast reload of cached graphs) and .el (interchange).
// Unlike test_io.cpp, which round-trips streams, these go through
// save_graph/load_graph so the extension dispatch (including its
// case-insensitive matching) is on the tested path, and they use
// generator-suite graphs rather than toy fixtures.
#include "graph/io/io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "graph/gen/suite.hpp"

namespace gcg {
namespace {

bool same_graph(const Csr& a, const Csr& b) {
  return a.num_vertices() == b.num_vertices() &&
         std::equal(a.row_offsets().begin(), a.row_offsets().end(),
                    b.row_offsets().begin(), b.row_offsets().end()) &&
         std::equal(a.col_indices().begin(), a.col_indices().end(),
                    b.col_indices().begin(), b.col_indices().end());
}

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class SuiteRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteRoundTrip, GbinSurvives) {
  const Csr g = make_suite_graph(GetParam(), {.scale = 0.02, .seed = 7}).graph;
  ASSERT_GT(g.num_edges(), 0u);
  const ScopedFile f(temp_path(std::string("rt_") + GetParam() + ".gbin"));
  save_graph(f.path(), g);
  EXPECT_TRUE(same_graph(g, load_graph(f.path())));
}

TEST_P(SuiteRoundTrip, EdgeListSurvives) {
  const Csr g = make_suite_graph(GetParam(), {.scale = 0.02, .seed = 7}).graph;
  const ScopedFile f(temp_path(std::string("rt_") + GetParam() + ".el"));
  save_graph(f.path(), g);
  EXPECT_TRUE(same_graph(g, load_graph(f.path())));
}

INSTANTIATE_TEST_SUITE_P(Suite, SuiteRoundTrip,
                         ::testing::Values("ecology-like", "road-like",
                                           "kron-like", "citation-like"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(IoDispatch, ExtensionsMatchCaseInsensitively) {
  const Csr g = make_suite_graph("ecology-like", {.scale = 0.02}).graph;
  for (const char* name : {"rt_upper.GBIN", "rt_mixed.El"}) {
    const ScopedFile f(temp_path(name));
    save_graph(f.path(), g);
    EXPECT_TRUE(same_graph(g, load_graph(f.path()))) << name;
  }
}

TEST(IoDispatch, UnknownExtensionListsSupportedOnes) {
  try {
    load_graph("/tmp/does_not_matter.xyz");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(".xyz"), std::string::npos) << msg;
    EXPECT_NE(msg.find(".gbin"), std::string::npos)
        << "error should list supported extensions: " << msg;
  }
}

TEST(GbinFormat, MalformedHeaderIsRejected) {
  // Wrong magic.
  const ScopedFile bad_magic(temp_path("rt_badmagic.gbin"));
  {
    std::ofstream out(bad_magic.path(), std::ios::binary);
    out << "notgbin!then some trailing bytes";
  }
  EXPECT_THROW(load_graph(bad_magic.path()), std::runtime_error);

  // Right magic, truncated payload.
  const ScopedFile truncated(temp_path("rt_trunc.gbin"));
  {
    const Csr g = make_suite_graph("ecology-like", {.scale = 0.02}).graph;
    std::ofstream out(truncated.path(), std::ios::binary);
    save_binary(out, g);
  }
  std::string bytes;
  {
    std::ifstream in(truncated.path(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(truncated.path(), std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(load_graph(truncated.path()), std::runtime_error);

  // Empty file.
  const ScopedFile empty(temp_path("rt_empty.gbin"));
  { std::ofstream out(empty.path(), std::ios::binary); }
  EXPECT_THROW(load_graph(empty.path()), std::runtime_error);
}

}  // namespace
}  // namespace gcg
