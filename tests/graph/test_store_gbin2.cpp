// .gbin v2 store round-trip and corruption suite: write -> mmap ->
// validate must be lossless, every corrupted header/section field must
// fail with a precise error (never garbage data or bad_alloc), and the
// hardened v1 loader must reject truncated streams before allocating.
#include "store/mapped_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/gen/suite.hpp"
#include "graph/io/io.hpp"
#include "store/format.hpp"
#include "store/writer.hpp"

namespace gcg {
namespace {

bool same_graph(const Csr& a, const Csr& b) {
  return a.num_vertices() == b.num_vertices() &&
         std::equal(a.row_offsets().begin(), a.row_offsets().end(),
                    b.row_offsets().begin(), b.row_offsets().end()) &&
         std::equal(a.col_indices().begin(), a.col_indices().end(),
                    b.col_indices().begin(), b.col_indices().end());
}

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Csr suite_graph() {
  return make_suite_graph("kron-like", {.scale = 0.02, .seed = 7}).graph;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Writes `g` as v2, applies `mutate` to the raw bytes, writes back.
void write_corrupted(const std::string& path, const Csr& g,
                     void (*mutate)(std::vector<char>&)) {
  store::write_gbin_v2(path, g);
  std::vector<char> bytes = read_file(path);
  mutate(bytes);
  write_file(path, bytes);
}

std::string load_error(const std::string& path) {
  try {
    (void)load_graph(path);
    return "";
  } catch (const std::exception& e) {
    return e.what();
  }
}

// ---------------------------------------------------------------- roundtrip

TEST(StoreGbin2, WriteMapValidateRoundTrips) {
  const Csr g = suite_graph();
  const ScopedFile f(temp_path("store_rt.gbin"));
  store::write_gbin_v2(f.path(), g);

  const auto mg = store::MappedGraph::open(f.path());
  ASSERT_TRUE(mg->is_mapped());
  EXPECT_TRUE(mg->graph().is_view());
  EXPECT_TRUE(same_graph(g, mg->graph()));
  EXPECT_NO_THROW(mg->graph().validate());
  EXPECT_EQ(mg->header().num_vertices, g.num_vertices());
  EXPECT_EQ(mg->header().num_arcs, g.num_arcs());
}

TEST(StoreGbin2, HeapModeMatchesMappedMode) {
  const Csr g = suite_graph();
  const ScopedFile f(temp_path("store_heap.gbin"));
  store::write_gbin_v2(f.path(), g);

  store::OpenOptions heap;
  heap.storage = store::OpenOptions::Storage::kHeap;
  const auto hg = store::MappedGraph::open(f.path(), heap);
  EXPECT_FALSE(hg->is_mapped());
  EXPECT_FALSE(hg->graph().is_view());
  EXPECT_TRUE(same_graph(g, hg->graph()));
}

TEST(StoreGbin2, LoadGraphReadsV2Heap) {
  // save_graph's .gbin dispatch writes v2; the plain heap loader must
  // read it back so non-store consumers keep working.
  const Csr g = suite_graph();
  const ScopedFile f(temp_path("store_dispatch.gbin"));
  save_graph(f.path(), g);
  EXPECT_TRUE(same_graph(g, load_graph(f.path())));
}

TEST(StoreGbin2, LegacyV1StillLoads) {
  const Csr g = suite_graph();
  const ScopedFile f(temp_path("store_v1.gbin"));
  {
    std::ofstream out(f.path(), std::ios::binary);
    save_binary(out, g);
  }
  EXPECT_FALSE(store::is_gbin_v2_file(f.path()));
  EXPECT_TRUE(same_graph(g, load_graph(f.path())));
}

TEST(StoreGbin2, EmptyGraphRoundTrips) {
  const Csr g(std::vector<eid_t>{0}, std::vector<vid_t>{});
  const ScopedFile f(temp_path("store_empty.gbin"));
  store::write_gbin_v2(f.path(), g);
  const auto mg = store::MappedGraph::open(f.path());
  EXPECT_EQ(mg->graph().num_vertices(), 0u);
  EXPECT_EQ(mg->graph().num_arcs(), 0u);
}

TEST(StoreGbin2, ViewOutlivesMappedGraphHandle) {
  const Csr g = suite_graph();
  const ScopedFile f(temp_path("store_keepalive.gbin"));
  store::write_gbin_v2(f.path(), g);

  Csr copy;
  {
    const auto mg = store::MappedGraph::open(f.path());
    copy = mg->graph();  // view copy shares the mapping anchor
  }
  // The MappedGraph handle is gone; the keepalive must pin the mapping.
  EXPECT_TRUE(copy.is_view());
  EXPECT_TRUE(same_graph(g, copy));
}

TEST(StoreGbin2, SectionsArePageAligned) {
  const Csr g = suite_graph();
  const ScopedFile f(temp_path("store_align.gbin"));
  store::write_gbin_v2(f.path(), g);
  const auto mg = store::MappedGraph::open(f.path());
  EXPECT_EQ(mg->header().rows_offset % store::kSectionAlign, 0u);
  EXPECT_EQ(mg->header().cols_offset % store::kSectionAlign, 0u);
  EXPECT_GE(mg->header().rows_offset, sizeof(store::HeaderV2));
}

// --------------------------------------------------------------- corruption

TEST(StoreGbin2, BadMagicRejected) {
  const ScopedFile f(temp_path("store_badmagic.gbin"));
  write_corrupted(f.path(), suite_graph(),
                  [](std::vector<char>& b) { b[0] = 'X'; });
  // Without either magic the heap loader can't even classify the file.
  EXPECT_NE(load_error(f.path()), "");
  EXPECT_THROW((void)store::MappedGraph::open(f.path()), std::runtime_error);
}

TEST(StoreGbin2, BadVersionRejected) {
  const ScopedFile f(temp_path("store_badver.gbin"));
  write_corrupted(f.path(), suite_graph(), [](std::vector<char>& b) {
    std::uint32_t v = 99;
    std::memcpy(b.data() + 8, &v, sizeof v);  // version follows magic
  });
  EXPECT_NE(load_error(f.path()).find("gbin2"), std::string::npos);
}

TEST(StoreGbin2, ForeignEndianRejected) {
  const ScopedFile f(temp_path("store_endian.gbin"));
  write_corrupted(f.path(), suite_graph(), [](std::vector<char>& b) {
    std::uint32_t swapped;
    std::memcpy(&swapped, b.data() + 12, sizeof swapped);
    swapped = __builtin_bswap32(swapped);
    std::memcpy(b.data() + 12, &swapped, sizeof swapped);
  });
  const std::string err = load_error(f.path());
  EXPECT_NE(err.find("endian"), std::string::npos) << err;
}

TEST(StoreGbin2, HeaderRotRejected) {
  const ScopedFile f(temp_path("store_rot.gbin"));
  write_corrupted(f.path(), suite_graph(), [](std::vector<char>& b) {
    b[100] ^= 0x40;  // inside the reserved tail — only the checksum sees it
  });
  const std::string err = load_error(f.path());
  EXPECT_NE(err.find("checksum"), std::string::npos) << err;
  EXPECT_THROW((void)store::MappedGraph::open(f.path()), std::runtime_error);
}

TEST(StoreGbin2, SectionRotCaughtByHeapLoadAndOptInVerify) {
  const ScopedFile f(temp_path("store_bitrot.gbin"));
  write_corrupted(f.path(), suite_graph(), [](std::vector<char>& b) {
    b.back() ^= 0x01;  // flip one bit in the cols section
  });
  // Heap loads always verify.
  const std::string err = load_error(f.path());
  EXPECT_NE(err.find("checksum"), std::string::npos) << err;

  // Mapped opens skip the verify by default (lazy paging)...
  EXPECT_NO_THROW((void)store::MappedGraph::open(f.path()));
  // ...and catch the rot when asked.
  store::OpenOptions strict;
  strict.verify_checksums = true;
  EXPECT_THROW((void)store::MappedGraph::open(f.path(), strict),
               std::runtime_error);
}

TEST(StoreGbin2, TruncatedFileRejected) {
  const Csr g = suite_graph();
  const ScopedFile f(temp_path("store_trunc.gbin"));
  store::write_gbin_v2(f.path(), g);
  std::vector<char> bytes = read_file(f.path());
  bytes.resize(bytes.size() / 2);  // cut mid-cols-section
  write_file(f.path(), bytes);

  EXPECT_NE(load_error(f.path()), "");
  EXPECT_THROW((void)store::MappedGraph::open(f.path()), std::runtime_error);
}

TEST(StoreGbin2, GeometryLiesRejected) {
  // Header claims a cols section far past EOF; both loaders must notice
  // before touching it. Recompute the header checksum so geometry — not
  // rot — is what the validator sees.
  const ScopedFile f(temp_path("store_geom.gbin"));
  write_corrupted(f.path(), suite_graph(), [](std::vector<char>& b) {
    store::HeaderV2 h;
    std::memcpy(&h, b.data(), sizeof h);
    h.cols_bytes = std::uint64_t{1} << 50;
    h.num_arcs = h.cols_bytes / sizeof(vid_t);
    h.header_checksum = store::header_checksum(h);
    std::memcpy(b.data(), &h, sizeof h);
  });
  EXPECT_NE(load_error(f.path()), "");
  EXPECT_THROW((void)store::MappedGraph::open(f.path()), std::runtime_error);
}

// --------------------------------------------------- hardened v1 loader

TEST(StoreGbin2, V1OversizedCountFailsCleanlyBeforeAllocating) {
  // A v1 header whose declared element count dwarfs the file must throw
  // the loader's "truncated stream" error, not attempt the allocation.
  const ScopedFile f(temp_path("store_v1_oversized.gbin"));
  {
    std::ofstream out(f.path(), std::ios::binary);
    out.write("gcgbin01", 8);
    const std::uint64_t huge = std::uint64_t{1} << 60;
    out.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  }
  const std::string err = load_error(f.path());
  EXPECT_NE(err.find("truncated"), std::string::npos) << err;
}

TEST(StoreGbin2, V1TruncatedMidArrayFailsCleanly) {
  const Csr g = suite_graph();
  const ScopedFile f(temp_path("store_v1_trunc.gbin"));
  {
    std::ofstream out(f.path(), std::ios::binary);
    save_binary(out, g);
  }
  std::vector<char> bytes = read_file(f.path());
  bytes.resize(bytes.size() - bytes.size() / 3);
  write_file(f.path(), bytes);
  const std::string err = load_error(f.path());
  EXPECT_NE(err.find("truncated"), std::string::npos) << err;
}

// ----------------------------------------------------------- pack + warmup

TEST(StoreGbin2, PackConvertsAndReuses) {
  const Csr g = suite_graph();
  const ScopedFile mtx(temp_path("store_pack.mtx"));
  const ScopedFile packed(temp_path("store_pack.mtx.gbin"));
  save_graph(mtx.path(), g);

  EXPECT_EQ(store::default_pack_target(mtx.path()), packed.path());
  const store::PackResult first =
      store::pack(mtx.path(), packed.path(), /*reuse_existing=*/true);
  EXPECT_FALSE(first.reused);
  EXPECT_GT(first.output_bytes, 0u);

  const store::PackResult second =
      store::pack(mtx.path(), packed.path(), /*reuse_existing=*/true);
  EXPECT_TRUE(second.reused);

  const auto mg = store::MappedGraph::open(packed.path());
  EXPECT_TRUE(same_graph(g, mg->graph()));
}

TEST(StoreGbin2, WarmupTouchesEveryPageAndResidencyReports) {
  const Csr g = suite_graph();
  const ScopedFile f(temp_path("store_warm.gbin"));
  store::write_gbin_v2(f.path(), g);

  const auto mg = store::MappedGraph::open(f.path());
  ASSERT_TRUE(mg->is_mapped());
  const std::size_t touched = mg->warmup();
  EXPECT_GT(touched, 0u);

  const store::ResidencyStats r = mg->residency();
  EXPECT_GT(r.total_pages, 0u);
  EXPECT_LE(r.resident_pages, r.total_pages);
  // Just touched every page, nothing evicted them yet.
  EXPECT_EQ(r.resident_pages, r.total_pages);
}

TEST(StoreGbin2, AdviceRoundTripsByName) {
  EXPECT_EQ(store::advice_from_name("random"), store::Advice::kRandom);
  EXPECT_STREQ(store::advice_name(store::Advice::kWillNeed), "willneed");
  EXPECT_THROW((void)store::advice_from_name("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace gcg
