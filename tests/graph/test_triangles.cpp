#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/gen/random.hpp"
#include "graph/gen/special.hpp"
#include "graph/stats.hpp"

namespace gcg {
namespace {

TEST(Triangles, KnownCounts) {
  EXPECT_EQ(count_triangles(make_complete(3)), 1u);
  EXPECT_EQ(count_triangles(make_complete(4)), 4u);
  EXPECT_EQ(count_triangles(make_complete(6)), 20u);  // C(6,3)
  EXPECT_EQ(count_triangles(make_cycle(5)), 0u);
  EXPECT_EQ(count_triangles(make_path(10)), 0u);
  EXPECT_EQ(count_triangles(make_star(8)), 0u);
  EXPECT_EQ(count_triangles(make_petersen()), 0u);  // girth 5
  EXPECT_EQ(count_triangles(make_complete_bipartite(3, 4)), 0u);
}

TEST(Triangles, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Csr g = make_erdos_renyi_gnm(60, 240, seed);
    // O(n^3) brute force.
    std::uint64_t expected = 0;
    auto adjacent = [&](vid_t a, vid_t b) {
      const auto nb = g.neighbors(a);
      return std::binary_search(nb.begin(), nb.end(), b);
    };
    for (vid_t a = 0; a < 60; ++a) {
      for (vid_t b = a + 1; b < 60; ++b) {
        if (!adjacent(a, b)) continue;
        for (vid_t c = b + 1; c < 60; ++c) {
          if (adjacent(a, c) && adjacent(b, c)) ++expected;
        }
      }
    }
    EXPECT_EQ(count_triangles(g), expected) << "seed " << seed;
  }
}

TEST(Clustering, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(global_clustering(make_complete(8)), 1.0);
}

TEST(Clustering, TriangleFreeIsZero) {
  EXPECT_DOUBLE_EQ(global_clustering(make_cycle(10)), 0.0);
  EXPECT_DOUBLE_EQ(global_clustering(make_empty(5)), 0.0);
}

TEST(Clustering, BetweenZeroAndOne) {
  const Csr g = make_erdos_renyi_gnm(200, 800, 7);
  const double c = global_clustering(g);
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
}

}  // namespace
}  // namespace gcg
