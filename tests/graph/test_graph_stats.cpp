#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/gen/grid.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

TEST(GraphStats, RegularGraphHasZeroSkew) {
  const Csr g = make_cycle(100);
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.n, 100u);
  EXPECT_EQ(s.arcs, 200u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_EQ(s.min_degree, 2u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.degree_cv, 0.0);
  EXPECT_NEAR(s.degree_gini, 0.0, 1e-12);
  EXPECT_EQ(s.connected_components, 1u);
  EXPECT_EQ(s.isolated_vertices, 0u);
}

TEST(GraphStats, StarIsMaximallySkewed) {
  const Csr g = make_star(99);
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.max_degree, 99u);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_GT(s.degree_cv, 3.0);
  EXPECT_GT(s.degree_gini, 0.4);
}

TEST(GraphStats, CountsIsolatedVertices) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  const GraphStats s = compute_stats(b.build());
  EXPECT_EQ(s.isolated_vertices, 3u);
  EXPECT_EQ(s.connected_components, 4u);  // {0,1} + three singletons
}

TEST(ConnectedComponents, LabelsAreConsistent) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Csr g = b.build();
  std::vector<vid_t> labels;
  EXPECT_EQ(connected_components(g, &labels), 3u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[5], labels[0]);
  EXPECT_NE(labels[5], labels[3]);
}

TEST(ConnectedComponents, GridIsConnected) {
  EXPECT_EQ(connected_components(make_grid2d(17, 13)), 1u);
}

TEST(DegreeHistogram, BucketsMatchDegrees) {
  const Csr g = make_star(8);  // hub degree 8, leaves degree 1
  const Histogram h = degree_histogram(g);
  EXPECT_EQ(h.total(), 9u);
  // 8 leaves in [1,2); hub (8) in [8,16).
  std::uint64_t ones = 0, eights = 0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    if (h.bin_label(b) == "[1,2)") ones = h.count(b);
    if (h.bin_label(b).rfind("[8,", 0) == 0) eights = h.count(b);
  }
  EXPECT_EQ(ones, 8u);
  EXPECT_EQ(eights, 1u);
}

TEST(Describe, MentionsKeyFields) {
  const GraphStats s = compute_stats(make_cycle(10));
  const std::string d = describe(s);
  EXPECT_NE(d.find("n=10"), std::string::npos);
  EXPECT_NE(d.find("cc=1"), std::string::npos);
}

}  // namespace
}  // namespace gcg
