// Edge-balanced contiguous partitioner tests. The invariant the sharded
// coloring stack rests on: no shard's (degree + 1)-weight exceeds the
// ideal share by more than one vertex weight, even on hub-heavy degree
// distributions, and the split is a pure function of (graph, shards).
#include "graph/partition.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "graph/gen/powerlaw.hpp"
#include "graph/gen/random.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

std::uint64_t shard_weight(const Csr& g, const Partition& p, unsigned s) {
  std::uint64_t w = 0;
  for (vid_t v = p.begin(s); v < p.end(s); ++v) w += g.degree(v) + 1;
  return w;
}

std::uint64_t total_weight(const Csr& g) {
  return static_cast<std::uint64_t>(g.num_arcs()) + g.num_vertices();
}

void expect_well_formed(const Csr& g, const Partition& p) {
  ASSERT_GE(p.num_shards(), 1u);
  EXPECT_EQ(p.bounds.front(), 0u);
  EXPECT_EQ(p.bounds.back(), g.num_vertices());
  for (std::size_t i = 1; i < p.bounds.size(); ++i) {
    EXPECT_LE(p.bounds[i - 1], p.bounds[i]);
  }
}

TEST(PartitionEdgeBalanced, BoundsWellFormed) {
  const Csr g = make_erdos_renyi_gnm(1000, 5000, 3);
  for (unsigned shards = 1; shards <= 9; ++shards) {
    const Partition p = partition_edge_balanced(g, shards);
    expect_well_formed(g, p);
    EXPECT_EQ(p.num_shards(), shards);
  }
}

// The load-balance invariant, on both a uniform and a hub-heavy degree
// distribution: weight(shard) <= total/shards + (max_degree + 1).
TEST(PartitionEdgeBalanced, EdgeBalanceInvariant) {
  const Csr graphs[] = {
      make_erdos_renyi_gnm(2000, 12000, 7),
      make_rmat(10, 8, {}, 3),           // skewed: hubs dominate the weight
      make_barabasi_albert(1500, 4, 9),
  };
  for (const Csr& g : graphs) {
    const std::uint64_t total = total_weight(g);
    const std::uint64_t slack = g.max_degree() + 1;
    for (unsigned shards : {2u, 3u, 4u, 8u, 16u}) {
      const Partition p = partition_edge_balanced(g, shards);
      expect_well_formed(g, p);
      for (unsigned s = 0; s < p.num_shards(); ++s) {
        EXPECT_LE(shard_weight(g, p, s),
                  total / shards + slack)
            << "shard " << s << " of " << shards;
      }
    }
  }
}

TEST(PartitionEdgeBalanced, ClampsShardCount) {
  const Csr g = make_path(5);
  EXPECT_EQ(partition_edge_balanced(g, 0).num_shards(), 1u);
  const Partition p = partition_edge_balanced(g, 64);
  expect_well_formed(g, p);
  EXPECT_LE(p.num_shards(), 5u);
}

TEST(PartitionEdgeBalanced, ShardOfMatchesBounds) {
  const Csr g = make_rmat(8, 8, {}, 5);
  const Partition p = partition_edge_balanced(g, 6);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const unsigned s = p.shard_of(v);
    ASSERT_LT(s, p.num_shards());
    EXPECT_LE(p.begin(s), v);
    EXPECT_LT(v, p.end(s));
  }
}

TEST(PartitionEdgeBalanced, Deterministic) {
  const Csr g = make_rmat(9, 8, {}, 13);
  const Partition a = partition_edge_balanced(g, 7);
  const Partition b = partition_edge_balanced(g, 7);
  EXPECT_EQ(a.bounds, b.bounds);
}

// A star's hub carries ~half the total weight: the edge-balanced split
// must isolate it in a narrow shard instead of handing one shard a
// quarter of the vertices hub included.
TEST(PartitionEdgeBalanced, HubGetsANarrowShard) {
  const Csr g = make_star(4095);
  const Partition p = partition_edge_balanced(g, 4);
  expect_well_formed(g, p);
  EXPECT_LT(p.size(p.shard_of(0)), g.num_vertices() / 8);
}

TEST(AnalyzePartition, SingleShardHasNoCut) {
  const Csr g = make_erdos_renyi_gnm(300, 1500, 1);
  const Partition p = partition_edge_balanced(g, 1);
  const PartitionReport r = analyze_partition(g, p);
  EXPECT_EQ(r.cut_arcs, 0u);
  EXPECT_EQ(r.boundary_vertices, 0u);
  EXPECT_DOUBLE_EQ(r.boundary_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.weight_imbalance, 1.0);
}

TEST(AnalyzePartition, CutMatchesBruteForce) {
  const Csr g = make_erdos_renyi_gnm(400, 2400, 11);
  const Partition p = partition_edge_balanced(g, 3);
  eid_t cut = 0;
  vid_t boundary = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    bool touches_out = false;
    for (const vid_t u : g.neighbors(v)) {
      if (p.shard_of(u) != p.shard_of(v)) {
        ++cut;
        touches_out = true;
      }
    }
    if (touches_out) ++boundary;
  }
  const PartitionReport r = analyze_partition(g, p);
  EXPECT_EQ(r.cut_arcs, cut);
  EXPECT_EQ(r.boundary_vertices, boundary);
  EXPECT_DOUBLE_EQ(r.boundary_fraction,
                   static_cast<double>(boundary) / g.num_vertices());
}

}  // namespace
}  // namespace gcg
