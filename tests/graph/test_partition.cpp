// Edge-balanced contiguous partitioner tests. The invariant the sharded
// coloring stack rests on: no shard's (degree + 1)-weight exceeds the
// ideal share by more than one vertex weight, even on hub-heavy degree
// distributions, and the split is a pure function of (graph, shards).
#include "graph/partition.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <span>
#include <type_traits>
#include <vector>

#include "graph/gen/powerlaw.hpp"
#include "graph/gen/random.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

std::uint64_t shard_weight(const Csr& g, const Partition& p, unsigned s) {
  std::uint64_t w = 0;
  for (vid_t v = p.begin(s); v < p.end(s); ++v) w += g.degree(v) + 1;
  return w;
}

std::uint64_t total_weight(const Csr& g) {
  return static_cast<std::uint64_t>(g.num_arcs()) + g.num_vertices();
}

void expect_well_formed(const Csr& g, const Partition& p) {
  ASSERT_GE(p.num_shards(), 1u);
  EXPECT_EQ(p.bounds.front(), 0u);
  EXPECT_EQ(p.bounds.back(), g.num_vertices());
  for (std::size_t i = 1; i < p.bounds.size(); ++i) {
    EXPECT_LE(p.bounds[i - 1], p.bounds[i]);
  }
}

TEST(PartitionEdgeBalanced, BoundsWellFormed) {
  const Csr g = make_erdos_renyi_gnm(1000, 5000, 3);
  for (unsigned shards = 1; shards <= 9; ++shards) {
    const Partition p = partition_edge_balanced(g, shards);
    expect_well_formed(g, p);
    EXPECT_EQ(p.num_shards(), shards);
  }
}

// The load-balance invariant, on both a uniform and a hub-heavy degree
// distribution: weight(shard) <= total/shards + (max_degree + 1).
TEST(PartitionEdgeBalanced, EdgeBalanceInvariant) {
  const Csr graphs[] = {
      make_erdos_renyi_gnm(2000, 12000, 7),
      make_rmat(10, 8, {}, 3),           // skewed: hubs dominate the weight
      make_barabasi_albert(1500, 4, 9),
  };
  for (const Csr& g : graphs) {
    const std::uint64_t total = total_weight(g);
    const std::uint64_t slack = g.max_degree() + 1;
    for (unsigned shards : {2u, 3u, 4u, 8u, 16u}) {
      const Partition p = partition_edge_balanced(g, shards);
      expect_well_formed(g, p);
      for (unsigned s = 0; s < p.num_shards(); ++s) {
        EXPECT_LE(shard_weight(g, p, s),
                  total / shards + slack)
            << "shard " << s << " of " << shards;
      }
    }
  }
}

TEST(PartitionEdgeBalanced, ClampsShardCount) {
  const Csr g = make_path(5);
  EXPECT_EQ(partition_edge_balanced(g, 0).num_shards(), 1u);
  const Partition p = partition_edge_balanced(g, 64);
  expect_well_formed(g, p);
  EXPECT_LE(p.num_shards(), 5u);
}

TEST(PartitionEdgeBalanced, ShardOfMatchesBounds) {
  const Csr g = make_rmat(8, 8, {}, 5);
  const Partition p = partition_edge_balanced(g, 6);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const unsigned s = p.shard_of(v);
    ASSERT_LT(s, p.num_shards());
    EXPECT_LE(p.begin(s), v);
    EXPECT_LT(v, p.end(s));
  }
}

TEST(PartitionEdgeBalanced, Deterministic) {
  const Csr g = make_rmat(9, 8, {}, 13);
  const Partition a = partition_edge_balanced(g, 7);
  const Partition b = partition_edge_balanced(g, 7);
  EXPECT_EQ(a.bounds, b.bounds);
}

// A star's hub carries ~half the total weight: the edge-balanced split
// must isolate it in a narrow shard instead of handing one shard a
// quarter of the vertices hub included.
TEST(PartitionEdgeBalanced, HubGetsANarrowShard) {
  const Csr g = make_star(4095);
  const Partition p = partition_edge_balanced(g, 4);
  expect_well_formed(g, p);
  EXPECT_LT(p.size(p.shard_of(0)), g.num_vertices() / 8);
}

// ------------------------------------------------------------------ 32/64 seam
// The offsets-based entry lets these tests fabricate row-offset prefixes
// whose cumulative weights cross UINT32_MAX without materialising a
// multi-gigabyte CSR. If any intermediate in the split search were ever
// computed in 32 bits, the targets would wrap and the splits collapse.

std::uint64_t offsets_weight_prefix(const std::vector<eid_t>& rows, vid_t v) {
  return rows[v] + v;
}

TEST(PartitionOffsets, MatchesCsrEntry) {
  const Csr g = make_rmat(9, 8, {}, 21);
  const std::span<const eid_t> rows = g.row_offsets();
  for (unsigned shards : {1u, 3u, 8u}) {
    EXPECT_EQ(partition_edge_balanced(g, shards).bounds,
              partition_edge_balanced(rows, shards).bounds);
  }
}

TEST(PartitionOffsets, DegreeSumsBeyondUint32SplitEvenly) {
  // Eight vertices of ~3e9 arcs each: every per-shard sum and every
  // split target exceeds UINT32_MAX (~4.29e9) well before the last
  // vertex. Truncated 32-bit targets would pile every split at the front.
  constexpr std::uint64_t kDeg = 3'000'000'000;
  std::vector<eid_t> rows(9);
  for (vid_t v = 0; v < 9; ++v) rows[v] = kDeg * v;

  const Partition p = partition_edge_balanced(rows, 4);
  ASSERT_EQ(p.num_shards(), 4u);
  EXPECT_EQ(p.bounds.front(), 0u);
  EXPECT_EQ(p.bounds.back(), 8u);
  const std::uint64_t total = offsets_weight_prefix(rows, 8);
  for (unsigned s = 0; s < 4; ++s) {
    const std::uint64_t w = offsets_weight_prefix(rows, p.end(s)) -
                            offsets_weight_prefix(rows, p.begin(s));
    EXPECT_LE(w, total / 4 + kDeg + 1) << "shard " << s;
  }
  // Uniform weights: the split must be the uniform one, two vertices each.
  EXPECT_EQ(p.bounds, (std::vector<vid_t>{0, 2, 4, 6, 8}));
}

TEST(PartitionOffsets, HubDegreeBeyondUint32IsIsolated) {
  // One 5e9-degree hub (alone past uint32) and a thousand degree-2
  // vertices: the hub's weight dwarfs the tail, so with 4 shards it must
  // sit in a shard of exactly one vertex.
  constexpr std::uint64_t kHub = 5'000'000'000;
  std::vector<eid_t> rows(1002);
  rows[0] = 0;
  rows[1] = kHub;
  for (vid_t v = 2; v < 1002; ++v) rows[v] = rows[v - 1] + 2;

  const Partition p = partition_edge_balanced(rows, 4);
  const unsigned hub_shard = p.shard_of(0);
  EXPECT_EQ(p.size(hub_shard), 1u);
}

TEST(PartitionOffsets, SplitLandsOnSmallestVertexPastTarget) {
  // Prefix crossing exactly the uint32 boundary between vertices 2 and 3;
  // verify the documented smallest-v-reaching-target property with
  // arithmetic done independently here in uint64.
  const std::uint64_t u32max = std::numeric_limits<std::uint32_t>::max();
  const std::vector<eid_t> rows = {0,         u32max / 2, u32max - 1,
                                   u32max + 7, u32max + 9, 2 * u32max};
  const unsigned shards = 2;
  const Partition p = partition_edge_balanced(rows, shards);
  const std::uint64_t total = offsets_weight_prefix(rows, 5);
  const std::uint64_t target = total * 1 / shards;
  vid_t smallest = 0;
  while (offsets_weight_prefix(rows, smallest) < target) ++smallest;
  EXPECT_EQ(p.bounds[1], smallest);
}

// A >4e9-arc CSR does not fit test memory, so analyze_partition's
// boundary behaviour is pinned at the type level: every arc accumulator
// is eid_t (64-bit), and the per-shard weight sums are computed in
// uint64 (see max_weight in partition.cpp) — the same widths the
// offsets-based split tests above exercise with real boundary values.
TEST(AnalyzePartition, ArcAccumulatorsAre64Bit) {
  static_assert(std::is_same_v<decltype(PartitionReport::cut_arcs), eid_t>);
  static_assert(std::is_same_v<decltype(PartitionReport::max_shard_arcs), eid_t>);
  static_assert(std::is_same_v<decltype(PartitionReport::min_shard_arcs), eid_t>);
  static_assert(sizeof(eid_t) == 8, "arc counts must survive > UINT32_MAX");
}

TEST(AnalyzePartition, SingleShardHasNoCut) {
  const Csr g = make_erdos_renyi_gnm(300, 1500, 1);
  const Partition p = partition_edge_balanced(g, 1);
  const PartitionReport r = analyze_partition(g, p);
  EXPECT_EQ(r.cut_arcs, 0u);
  EXPECT_EQ(r.boundary_vertices, 0u);
  EXPECT_DOUBLE_EQ(r.boundary_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.weight_imbalance, 1.0);
}

TEST(AnalyzePartition, CutMatchesBruteForce) {
  const Csr g = make_erdos_renyi_gnm(400, 2400, 11);
  const Partition p = partition_edge_balanced(g, 3);
  eid_t cut = 0;
  vid_t boundary = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    bool touches_out = false;
    for (const vid_t u : g.neighbors(v)) {
      if (p.shard_of(u) != p.shard_of(v)) {
        ++cut;
        touches_out = true;
      }
    }
    if (touches_out) ++boundary;
  }
  const PartitionReport r = analyze_partition(g, p);
  EXPECT_EQ(r.cut_arcs, cut);
  EXPECT_EQ(r.boundary_vertices, boundary);
  EXPECT_DOUBLE_EQ(r.boundary_fraction,
                   static_cast<double>(boundary) / g.num_vertices());
}

}  // namespace
}  // namespace gcg
