#include "graph/gen/configuration.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/stats.hpp"

namespace gcg {
namespace {

TEST(ConfigurationModel, MatchesRegularSequenceExactlyOrClose) {
  // 3-regular on 100 vertices: stub matching should achieve most degrees.
  const std::vector<vid_t> degrees(100, 3);
  const Csr g = make_configuration_model(degrees, 7);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(g.has_no_self_loops());
  std::uint64_t achieved = g.num_arcs();
  EXPECT_GE(achieved, 100u * 3 * 9 / 10);  // >= 90% of stubs realized
  for (vid_t v = 0; v < 100; ++v) ASSERT_LE(g.degree(v), 3u);
}

TEST(ConfigurationModel, OddStubSumHandled) {
  const std::vector<vid_t> degrees{3, 2, 2, 2};  // sum 9, odd
  const Csr g = make_configuration_model(degrees, 1);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_TRUE(g.has_no_self_loops());
  EXPECT_TRUE(g.is_sorted_unique());
}

TEST(ConfigurationModel, DeterministicPerSeed) {
  const auto degrees = power_law_degrees(200, 2.5, 2, 40, 3);
  const Csr a = make_configuration_model(degrees, 11);
  const Csr b = make_configuration_model(degrees, 11);
  EXPECT_TRUE(std::equal(a.col_indices().begin(), a.col_indices().end(),
                         b.col_indices().begin(), b.col_indices().end()));
  const Csr c = make_configuration_model(degrees, 12);
  EXPECT_FALSE(std::equal(a.col_indices().begin(), a.col_indices().end(),
                          c.col_indices().begin(), c.col_indices().end()));
}

TEST(PowerLawDegrees, RespectsBoundsAndSkew) {
  const auto d = power_law_degrees(5000, 2.2, 2, 100, 5);
  ASSERT_EQ(d.size(), 5000u);
  vid_t dmin = ~vid_t{0}, dmax = 0;
  double sum = 0;
  for (vid_t x : d) {
    dmin = std::min(dmin, x);
    dmax = std::max(dmax, x);
    sum += x;
  }
  EXPECT_GE(dmin, 2u);
  EXPECT_LE(dmax, 100u);
  EXPECT_GT(dmax, 30u);              // the tail exists
  EXPECT_LT(sum / 5000.0, 15.0);     // but the mean stays small (skew)
}

TEST(ConfigurationModel, PowerLawSequenceYieldsSkewedGraph) {
  const auto degrees = power_law_degrees(2000, 2.3, 2, 80, 9);
  const Csr g = make_configuration_model(degrees, 9);
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.degree_cv, 0.6);
  EXPECT_GT(s.max_degree, 40u);
}

}  // namespace
}  // namespace gcg
