#include "simgpu/group.hpp"

#include <gtest/gtest.h>

#include "simgpu/config.hpp"

namespace gcg::simgpu {
namespace {

class GroupTest : public ::testing::Test {
 protected:
  DeviceConfig cfg = test_device();  // wavefront 8, max group 64
};

TEST_F(GroupTest, WaveGeometryForFullGroup) {
  Group g(cfg, /*group_id=*/2, /*group_size=*/24, /*grid_size=*/1000);
  ASSERT_EQ(g.waves().size(), 3u);
  EXPECT_EQ(g.waves()[0].first_global_id(), 48u);  // 2*24
  EXPECT_EQ(g.waves()[1].first_global_id(), 56u);
  EXPECT_EQ(g.waves()[2].first_global_id(), 64u);
  for (const auto& w : g.waves()) EXPECT_EQ(w.width(), 8u);
}

TEST_F(GroupTest, PartialTrailingWave) {
  // Group of 20 = 2 full 8-lane waves + one 4-lane wave.
  Group g(cfg, 0, 20, 1000);
  ASSERT_EQ(g.waves().size(), 3u);
  EXPECT_EQ(g.waves()[2].width(), 4u);
}

TEST_F(GroupTest, GridEdgeMasksLanes) {
  // Group 1 of size 16 over a 20-item grid: second wave has 4 valid lanes.
  Group g(cfg, 1, 16, 20);
  ASSERT_EQ(g.waves().size(), 2u);
  EXPECT_EQ(g.waves()[0].valid().count(), 4u);  // ids 16..19 valid
  EXPECT_EQ(g.waves()[1].valid().count(), 0u);  // ids 24..31 all past edge
}

TEST_F(GroupTest, LdsAllocationAlignsAndZeroes) {
  Group g(cfg, 0, 8, 8);
  auto bytes = g.lds_alloc<std::uint8_t>(3);
  bytes[0] = 0xFF;
  auto words = g.lds_alloc<std::uint64_t>(2);  // must be 8-byte aligned
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words.data()) % 8, 0u);
  EXPECT_EQ(words[0], 0u);
  EXPECT_EQ(words[1], 0u);
  EXPECT_GE(g.lds_used(), 3u + 16u);
}

TEST_F(GroupTest, BarrierChargesAllWaves) {
  Group g(cfg, 0, 24, 1000);
  g.barrier();
  g.barrier();
  for (const auto& w : g.waves()) EXPECT_EQ(w.cost().barriers, 2u);
}

TEST_F(GroupTest, AttachCacheReachesEveryWave) {
  CacheSim cache(4096, 64, 2);
  Group g(cfg, 0, 16, 1000);
  g.attach_cache(&cache);
  std::vector<std::uint32_t> mem(8, 1);
  for (auto& w : g.waves()) {
    w.load_uniform(std::span<const std::uint32_t>(mem), 0);
  }
  EXPECT_EQ(cache.misses(), 1u);  // first wave misses, second hits
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(GroupTest, OversizedGroupAborts) {
  EXPECT_DEATH(Group(cfg, 0, cfg.max_group_size + 1, 10), "precondition");
}

}  // namespace
}  // namespace gcg::simgpu
