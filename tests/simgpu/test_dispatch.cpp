#include "simgpu/dispatch.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gcg::simgpu {
namespace {

class DispatchTest : public ::testing::Test {
 protected:
  DeviceConfig cfg = test_device();  // 4 CUs, 8-lane waves, 2 SIMDs/CU
};

TEST_F(DispatchTest, CoversEveryWorkItemExactlyOnce) {
  std::vector<int> touched(100, 0);
  dispatch_waves(cfg, 100, 16, [&](Wave& w) {
    for (unsigned i = 0; i < w.width(); ++i) {
      if (w.valid().test(i)) ++touched[w.global_ids()[i]];
    }
  });
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST_F(DispatchTest, GroupAndWaveGeometry) {
  std::vector<std::uint64_t> group_ids;
  std::vector<unsigned> waves_per_group;
  dispatch(cfg, 64, 16, [&](Group& g) {
    group_ids.push_back(g.group_id());
    waves_per_group.push_back(static_cast<unsigned>(g.waves().size()));
  });
  EXPECT_EQ(group_ids.size(), 4u);  // 64/16
  for (unsigned wpg : waves_per_group) EXPECT_EQ(wpg, 2u);  // 16/8 waves
}

TEST_F(DispatchTest, TrailingWaveIsMasked) {
  unsigned valid_lanes = 0;
  dispatch_waves(cfg, 10, 8, [&](Wave& w) { valid_lanes += w.valid().count(); });
  EXPECT_EQ(valid_lanes, 10u);
}

TEST_F(DispatchTest, EmptyGridStillHasLaunchOverhead) {
  const LaunchResult r = dispatch_waves(cfg, 0, 8, [](Wave&) { FAIL(); });
  EXPECT_DOUBLE_EQ(r.kernel_cycles, cfg.kernel_launch_cycles);
  EXPECT_EQ(r.num_groups, 0u);
}

TEST_F(DispatchTest, KernelTimeIsMaxCuPlusOverhead) {
  const LaunchResult r =
      dispatch_waves(cfg, 64, 8, [](Wave& w) { w.valu(Mask::full(8), 10.0); });
  double max_cu = 0.0;
  for (double b : r.cu_busy_cycles) max_cu = std::max(max_cu, b);
  EXPECT_DOUBLE_EQ(r.kernel_cycles, max_cu + cfg.kernel_launch_cycles);
}

TEST_F(DispatchTest, BalancedWorkSpreadsAcrossCus) {
  // 8 equal groups over 4 CUs: every CU gets exactly 2 groups.
  const LaunchResult r =
      dispatch_waves(cfg, 64, 8, [](Wave& w) { w.valu(Mask::full(8), 10.0); });
  EXPECT_EQ(r.num_groups, 8u);
  for (double b : r.cu_busy_cycles) EXPECT_DOUBLE_EQ(b, r.cu_busy_cycles[0]);
  EXPECT_NEAR(r.cu_imbalance(), 1.0, 1e-12);
}

TEST_F(DispatchTest, SkewedGroupCausesCuImbalance) {
  // Group 7 does 100x the work of the others.
  const LaunchResult r = dispatch_waves(cfg, 64, 8, [](Wave& w) {
    const bool heavy = w.first_global_id() / 8 == 7;
    w.valu(Mask::full(8), heavy ? 1000.0 : 10.0);
  });
  EXPECT_GT(r.cu_imbalance(), 2.0);
}

TEST_F(DispatchTest, ListSchedulingFillsEarliestFreeCu) {
  // Groups with decreasing cost: 40,30,20,10 over 4 CUs, then 4 more equal
  // ones; earliest-free scheduling must put later groups on lighter CUs.
  std::vector<double> costs{40, 30, 20, 10, 5, 5, 5, 5};
  const LaunchResult r = dispatch_waves(cfg, 64, 8, [&](Wave& w) {
    w.valu(Mask::full(8), costs[w.first_global_id() / 8]);
  });
  // CU loads: 40, 30+5, 20+5+5, 10+5+5+5 -> max 40.
  double max_cu = 0.0;
  for (double b : r.cu_busy_cycles) max_cu = std::max(max_cu, b);
  EXPECT_DOUBLE_EQ(max_cu, 40.0 * cfg.cpi_valu);
}

TEST_F(DispatchTest, SimdEfficiencyReflectsDivergence) {
  const LaunchResult full =
      dispatch_waves(cfg, 64, 8, [](Wave& w) { w.valu(Mask::full(8)); });
  EXPECT_NEAR(full.simd_efficiency, 1.0, 1e-12);
  const LaunchResult single =
      dispatch_waves(cfg, 64, 8, [](Wave& w) { w.valu(Mask(0b1)); });
  EXPECT_NEAR(single.simd_efficiency, 1.0 / 8.0, 1e-12);
}

TEST_F(DispatchTest, MemoryCostModel) {
  // Low occupancy exposes the full DRAM latency per memory instruction;
  // high occupancy divides it by the waves per SIMD available to overlap.
  const double low = latency_cost(cfg, 1.0);
  EXPECT_DOUBLE_EQ(low, cfg.mem_latency_cycles);
  const double high = latency_cost(cfg, cfg.max_waves_per_cu);
  EXPECT_DOUBLE_EQ(high, cfg.mem_latency_cycles /
                             (cfg.max_waves_per_cu /
                              static_cast<double>(cfg.simds_per_cu)));
  EXPECT_LT(high, low);
  EXPECT_DOUBLE_EQ(bandwidth_cost(cfg),
                   cfg.cacheline_bytes / cfg.mem_bytes_per_cycle_per_cu);
}

TEST_F(DispatchTest, BiggerGridsGetCheaperMemoryLatency) {
  auto kernel = [](Wave& w) {
    std::vector<std::uint32_t> mem(64);
    Vec<std::uint32_t> idx;
    w.load(std::span<const std::uint32_t>(mem), idx, Mask(0b1));
  };
  const LaunchResult small = dispatch_waves(cfg, 8, 8, kernel);
  const LaunchResult big = dispatch_waves(cfg, 8 * 512, 8, kernel);
  EXPECT_GT(small.mem_latency_cost, big.mem_latency_cost);
}

TEST_F(DispatchTest, DivergentLoopCostsMoreMemoryTimeThanCoalescedOne) {
  // The paper's core effect: one lane gathering d values serially (d
  // memory instructions) must cost far more than a full wave gathering
  // them cooperatively (d/width instructions), even at equal line counts.
  std::vector<std::uint32_t> mem(8 * 1024, 1);
  auto divergent = [&](Wave& w) {
    for (unsigned step = 0; step < 64; ++step) {
      Vec<std::uint32_t> idx;
      idx[0] = step * 16;  // a fresh line every step, single lane
      w.load(std::span<const std::uint32_t>(mem), idx, Mask(0b1));
    }
  };
  auto cooperative = [&](Wave& w) {
    for (unsigned step = 0; step < 8; ++step) {  // 64 lines in 8x8-lane steps
      Vec<std::uint32_t> idx;
      for (unsigned i = 0; i < 8; ++i) idx[i] = (step * 8 + i) * 16;
      w.load(std::span<const std::uint32_t>(mem), idx, Mask::full(8));
    }
  };
  const LaunchResult d = dispatch_waves(cfg, 8, 8, divergent);
  const LaunchResult c = dispatch_waves(cfg, 8, 8, cooperative);
  EXPECT_EQ(d.total.mem_transactions, c.total.mem_transactions);
  EXPECT_GT(d.kernel_cycles, 3.0 * c.kernel_cycles);
}

TEST_F(DispatchTest, DeterministicAcrossRuns) {
  auto kernel = [](Wave& w) { w.valu(w.valid(), 3.0); };
  const LaunchResult a = dispatch_waves(cfg, 1000, 16, kernel);
  const LaunchResult b = dispatch_waves(cfg, 1000, 16, kernel);
  EXPECT_DOUBLE_EQ(a.kernel_cycles, b.kernel_cycles);
  EXPECT_EQ(a.total.mem_transactions, b.total.mem_transactions);
}

TEST_F(DispatchTest, DeviceAccumulatesTimeline) {
  Device dev(cfg);
  dev.launch_waves(64, 8, [](Wave& w) { w.valu(Mask::full(8)); });
  dev.launch_waves(64, 8, [](Wave& w) { w.valu(Mask::full(8)); });
  EXPECT_EQ(dev.launch_count(), 2u);
  EXPECT_DOUBLE_EQ(dev.total_cycles(), dev.history()[0].kernel_cycles +
                                           dev.history()[1].kernel_cycles);
  EXPECT_GT(dev.total_ms(), 0.0);
  dev.record_external(500.0);
  EXPECT_DOUBLE_EQ(dev.total_cycles(), dev.history()[0].kernel_cycles +
                                           dev.history()[1].kernel_cycles +
                                           500.0);
  dev.reset();
  EXPECT_EQ(dev.launch_count(), 0u);
  EXPECT_DOUBLE_EQ(dev.total_cycles(), 0.0);
}

TEST_F(DispatchTest, GroupBarrierChargesEveryWave) {
  const LaunchResult r = dispatch(cfg, 32, 16, [](Group& g) { g.barrier(); });
  // 2 groups x 2 waves, one barrier each.
  EXPECT_EQ(r.total.barriers, 4u);
}

TEST_F(DispatchTest, LdsAllocatorEnforcesCapacity) {
  dispatch(cfg, 8, 8, [&](Group& g) {
    auto a = g.lds_alloc<std::uint32_t>(16);
    EXPECT_EQ(a.size(), 16u);
    a[0] = 42;
    EXPECT_EQ(a[0], 42u);
    EXPECT_GE(g.lds_used(), 64u);
  });
  EXPECT_DEATH(dispatch(cfg, 8, 8,
                        [&](Group& g) {
                          g.lds_alloc<std::uint8_t>(cfg.lds_bytes_per_group + 1);
                        }),
               "precondition");
}

TEST_F(DispatchTest, WaveCyclesPricesAllEventKinds) {
  WaveCost c;
  c.valu_instructions = 10;
  c.salu_instructions = 4;
  c.mem_instructions = 2;
  c.mem_transactions = 3;
  c.atomic_instructions = 1;
  c.atomic_extra_serializations = 2;
  c.barriers = 1;
  const double cycles = wave_cycles(cfg, c, 100.0);
  const double expected = 10 * cfg.cpi_valu + 4 * cfg.cpi_salu +
                          2 * (cfg.cpi_valu + 100.0) +
                          3 * bandwidth_cost(cfg) +
                          1 * cfg.atomic_base_cycles +
                          2 * cfg.atomic_conflict_cycles + cfg.barrier_cycles;
  EXPECT_DOUBLE_EQ(cycles, expected);
}

}  // namespace
}  // namespace gcg::simgpu
