#include "simgpu/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace gcg::simgpu {
namespace {

Device make_device_with_history() {
  Device dev(test_device());
  dev.launch_waves(64, 8, [](Wave& w) { w.valu(Mask::full(8), 5.0); });
  dev.launch_waves(32, 8, [](Wave& w) { w.valu(Mask(0b1), 2.0); });
  return dev;
}

TEST(Trace, EmitsValidJsonStructure) {
  const Device dev = make_device_with_history();
  std::ostringstream os;
  write_chrome_trace(os, dev, {"phaseA", "phaseB"});
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"phaseA\""), std::string::npos);
  EXPECT_NE(json.find("\"phaseB\""), std::string::npos);
  EXPECT_NE(json.find("simd efficiency"), std::string::npos);
  EXPECT_NE(json.find("cu imbalance"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Trace, DefaultLabelsAndDurations) {
  const Device dev = make_device_with_history();
  std::ostringstream os;
  write_chrome_trace(os, dev);
  EXPECT_NE(os.str().find("kernel 0"), std::string::npos);
  EXPECT_NE(os.str().find("kernel 1"), std::string::npos);
  EXPECT_NE(os.str().find("\"dur\":"), std::string::npos);
}

TEST(Trace, EscapesQuotesInNames) {
  const Device dev = make_device_with_history();
  std::ostringstream os;
  write_chrome_trace(os, dev, {"say \"hi\""});
  EXPECT_NE(os.str().find("say \\\"hi\\\""), std::string::npos);
}

TEST(Trace, WritesFile) {
  const Device dev = make_device_with_history();
  const std::string path = std::string(::testing::TempDir()) + "/gcg_trace.json";
  write_chrome_trace_file(path, dev);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, FileErrorThrows) {
  const Device dev = make_device_with_history();
  EXPECT_THROW(write_chrome_trace_file("/nonexistent/dir/x.json", dev),
               std::runtime_error);
}

}  // namespace
}  // namespace gcg::simgpu
