#include "simgpu/occupancy.hpp"

#include <gtest/gtest.h>

namespace gcg::simgpu {
namespace {

class OccupancyTest : public ::testing::Test {
 protected:
  DeviceConfig cfg = tahiti();  // 4 SIMDs, 40 waves/CU, 32 KiB LDS/group
};

TEST_F(OccupancyTest, LightKernelReachesFullResidency) {
  KernelResources res;
  res.vgprs_per_lane = 24;  // 1024/24 = 42 > 10 waves/SIMD
  res.lds_bytes_per_group = 0;
  res.group_size = 256;
  const OccupancyReport rep = occupancy(cfg, res);
  EXPECT_EQ(rep.waves_per_cu, 40u);
  EXPECT_EQ(rep.groups_per_cu, 10u);
  EXPECT_STREQ(rep.limiting_factor, "wave-slots");
}

TEST_F(OccupancyTest, VgprPressureHalvesOccupancy) {
  KernelResources res;
  res.vgprs_per_lane = 200;  // 1024/200 = 5 waves/SIMD -> 20/CU
  res.group_size = 256;
  const OccupancyReport rep = occupancy(cfg, res);
  EXPECT_EQ(rep.limit_by_vgprs, 20u);
  EXPECT_EQ(rep.waves_per_cu, 20u);
  EXPECT_STREQ(rep.limiting_factor, "vgprs");
}

TEST_F(OccupancyTest, LdsBoundsGroups) {
  KernelResources res;
  res.vgprs_per_lane = 16;
  res.lds_bytes_per_group = 32768;  // 64 KiB CU budget -> 2 groups
  res.group_size = 256;             // 4 waves per group
  const OccupancyReport rep = occupancy(cfg, res);
  EXPECT_EQ(rep.limit_by_lds, 8u);
  EXPECT_EQ(rep.groups_per_cu, 2u);
  EXPECT_EQ(rep.waves_per_cu, 8u);
  EXPECT_STREQ(rep.limiting_factor, "lds");
}

TEST_F(OccupancyTest, SgprPressure) {
  KernelResources res;
  res.vgprs_per_lane = 16;
  res.sgprs_per_wave = 256;  // 512/256 = 2 waves/SIMD -> 8/CU
  res.group_size = 64;
  const OccupancyReport rep = occupancy(cfg, res);
  EXPECT_EQ(rep.limit_by_sgprs, 8u);
  EXPECT_EQ(rep.waves_per_cu, 8u);
  EXPECT_STREQ(rep.limiting_factor, "sgprs");
}

TEST_F(OccupancyTest, WholeGroupAllocation) {
  // 15 waves would fit by registers, but groups of 4 waves allocate whole:
  // 3 groups = 12 waves.
  KernelResources res;
  res.vgprs_per_lane = 273;  // 1024/273 = 3 waves/SIMD -> 12... pick to land
  res.group_size = 320;      // 5 waves per group
  const OccupancyReport rep = occupancy(cfg, res);
  EXPECT_EQ(rep.waves_per_cu % 5, 0u);
  EXPECT_EQ(rep.groups_per_cu, rep.waves_per_cu / 5);
}

TEST_F(OccupancyTest, MonsterKernelDoesNotFit) {
  KernelResources res;
  res.vgprs_per_lane = 1024;  // 1 wave/SIMD = 4/CU
  res.group_size = 1024;      // 16 waves per group: group never fits
  const OccupancyReport rep = occupancy(cfg, res);
  EXPECT_EQ(rep.waves_per_cu, 0u);
  EXPECT_STREQ(rep.limiting_factor, "group-does-not-fit");
}

TEST_F(OccupancyTest, ZeroLdsMeansNoLdsLimit) {
  KernelResources res;
  res.lds_bytes_per_group = 0;
  res.group_size = 64;
  const OccupancyReport rep = occupancy(cfg, res);
  EXPECT_GE(rep.limit_by_lds, rep.waves_per_cu);
}

}  // namespace
}  // namespace gcg::simgpu
