#include "simgpu/wave.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simgpu/config.hpp"

namespace gcg::simgpu {
namespace {

class WaveTest : public ::testing::Test {
 protected:
  DeviceConfig cfg = tahiti();  // 64-lane, 64B lines
  Wave make_wave(std::uint64_t first = 0, std::uint64_t grid = 1024) {
    return Wave(cfg, first, cfg.wavefront_size, grid);
  }
};

TEST_F(WaveTest, IdentityAndValidMask) {
  Wave w = make_wave(128, 160);
  EXPECT_EQ(w.width(), 64u);
  EXPECT_EQ(w.global_ids()[0], 128u);
  EXPECT_EQ(w.global_ids()[63], 191u);
  // Grid ends at 160: lanes 0..31 valid, rest not.
  EXPECT_EQ(w.valid().count(), 32u);
  EXPECT_TRUE(w.valid().test(31));
  EXPECT_FALSE(w.valid().test(32));
}

TEST_F(WaveTest, ValuChargesInstructionsAndLaneOps) {
  Wave w = make_wave();
  w.valu(Mask::full(64), 2.0);
  w.valu(Mask(0b1), 1.0);  // single active lane: full instruction issued
  EXPECT_DOUBLE_EQ(w.cost().valu_instructions, 3.0);
  EXPECT_DOUBLE_EQ(w.cost().valu_lane_ops, 2.0 * 64 + 1.0);
  EXPECT_NEAR(simd_efficiency(w.cost(), 64), (128.0 + 1.0) / (3 * 64), 1e-12);
}

TEST_F(WaveTest, CoalescedLoadIsFewTransactions) {
  std::vector<std::uint32_t> mem(1024);
  std::iota(mem.begin(), mem.end(), 0u);
  Wave w = make_wave();
  Vec<std::uint32_t> idx;
  for (unsigned i = 0; i < 64; ++i) idx[i] = i;  // consecutive words
  const auto out = w.load(std::span<const std::uint32_t>(mem), idx, Mask::full(64));
  EXPECT_EQ(out[13], 13u);
  // 64 lanes x 4B = 256B = 4 lines of 64B.
  EXPECT_EQ(w.cost().mem_transactions, 4u);
  EXPECT_EQ(w.cost().mem_instructions, 1u);
}

TEST_F(WaveTest, ScatteredLoadIsOneTransactionPerLane) {
  std::vector<std::uint32_t> mem(65536, 5);
  Wave w = make_wave();
  Vec<std::uint32_t> idx;
  for (unsigned i = 0; i < 64; ++i) idx[i] = i * 1024;  // distinct lines
  w.load(std::span<const std::uint32_t>(mem), idx, Mask::full(64));
  EXPECT_EQ(w.cost().mem_transactions, 64u);
}

TEST_F(WaveTest, SameLineLanesShareTransaction) {
  std::vector<std::uint32_t> mem(64, 9);
  Wave w = make_wave();
  const auto idx = Vec<std::uint32_t>::splat(3);  // all lanes same address
  const auto out = w.load(std::span<const std::uint32_t>(mem), idx, Mask::full(64));
  EXPECT_EQ(out[50], 9u);
  EXPECT_EQ(w.cost().mem_transactions, 1u);
}

TEST_F(WaveTest, InactiveLanesLoadNothing) {
  std::vector<std::uint32_t> mem(64, 7);
  Wave w = make_wave();
  Vec<std::uint32_t> idx = Vec<std::uint32_t>::splat(0);
  const auto out = w.load(std::span<const std::uint32_t>(mem), idx, Mask(0b10));
  EXPECT_EQ(out[1], 7u);
  EXPECT_EQ(out[0], 0u);  // untouched default
}

TEST_F(WaveTest, StoreWritesOnlyActiveLanes) {
  std::vector<int> mem(64, -1);
  Wave w = make_wave();
  Vec<std::uint32_t> idx;
  for (unsigned i = 0; i < 64; ++i) idx[i] = i;
  w.store(std::span<int>(mem), idx, Vec<int>::splat(5), Mask(0b101));
  EXPECT_EQ(mem[0], 5);
  EXPECT_EQ(mem[1], -1);
  EXPECT_EQ(mem[2], 5);
}

TEST_F(WaveTest, StoreCollisionHigherLaneWins) {
  std::vector<int> mem(4, 0);
  Wave w = make_wave();
  const auto idx = Vec<std::uint32_t>::splat(2);
  Vec<int> val;
  for (unsigned i = 0; i < 64; ++i) val[i] = static_cast<int>(i);
  w.store(std::span<int>(mem), idx, val, Mask::full(64));
  EXPECT_EQ(mem[2], 63);
}

TEST_F(WaveTest, UniformAccessesCostOneTransaction) {
  std::vector<double> mem(16, 2.5);
  Wave w = make_wave();
  EXPECT_DOUBLE_EQ(w.load_uniform(std::span<const double>(mem), 3), 2.5);
  w.store_uniform(std::span<double>(mem), 4, 9.0);
  EXPECT_DOUBLE_EQ(mem[4], 9.0);
  EXPECT_EQ(w.cost().mem_transactions, 2u);
  EXPECT_EQ(w.cost().mem_instructions, 2u);
}

TEST_F(WaveTest, AtomicAddReturnsOldAndSerializesConflicts) {
  std::vector<std::uint32_t> mem(8, 0);
  Wave w = make_wave();
  // 4 lanes on address 0, 2 lanes on address 1.
  Vec<std::uint32_t> idx;
  Mask m;
  for (unsigned i = 0; i < 4; ++i) {
    idx[i] = 0;
    m.set(i);
  }
  idx[4] = 1;
  idx[5] = 1;
  m.set(4);
  m.set(5);
  const auto old = w.atomic_add(std::span<std::uint32_t>(mem), idx,
                                Vec<std::uint32_t>::splat(1), m);
  EXPECT_EQ(mem[0], 4u);
  EXPECT_EQ(mem[1], 2u);
  // Lane order semantics: olds on address 0 are 0,1,2,3.
  EXPECT_EQ(old[0], 0u);
  EXPECT_EQ(old[3], 3u);
  EXPECT_EQ(old[5], 1u);
  EXPECT_EQ(w.cost().atomic_instructions, 1u);
  // Extra serializations: (4-1) + (2-1) = 4.
  EXPECT_EQ(w.cost().atomic_extra_serializations, 4u);
}

TEST_F(WaveTest, AtomicMinKeepsMinimum) {
  std::vector<int> mem(2, 100);
  Wave w = make_wave();
  Vec<std::uint32_t> idx = Vec<std::uint32_t>::splat(0);
  Vec<int> val;
  val[0] = 50;
  val[1] = 70;
  val[2] = 30;
  Mask m(0b111);
  w.atomic_min(std::span<int>(mem), idx, val, m);
  EXPECT_EQ(mem[0], 30);
}

TEST_F(WaveTest, AtomicAddUniform) {
  std::vector<std::uint32_t> counter(1, 10);
  Wave w = make_wave();
  EXPECT_EQ(w.atomic_add_uniform(std::span<std::uint32_t>(counter), 0, 5u), 10u);
  EXPECT_EQ(counter[0], 15u);
  EXPECT_EQ(w.cost().atomic_instructions, 1u);
}

TEST_F(WaveTest, Reductions) {
  Wave w = make_wave();
  Vec<int> v;
  for (unsigned i = 0; i < 64; ++i) v[i] = static_cast<int>(i);
  EXPECT_EQ(w.reduce_max(v, Mask::full(64), -1), 63);
  EXPECT_EQ(w.reduce_max(v, Mask(0b111), -1), 2);
  EXPECT_EQ(w.reduce_max(v, Mask::none(), -1), -1);
  EXPECT_EQ(w.reduce_sum(v, Mask(0b110)), 3);
}

TEST_F(WaveTest, RankWithinCompacts) {
  Wave w = make_wave();
  Mask m;
  m.set(3);
  m.set(10);
  m.set(40);
  const auto rank = w.rank_within(m);
  EXPECT_EQ(rank[3], 0u);
  EXPECT_EQ(rank[10], 1u);
  EXPECT_EQ(rank[40], 2u);
}

TEST_F(WaveTest, OutOfBoundsGatherAborts) {
  std::vector<std::uint32_t> mem(4, 0);
  Wave w = make_wave();
  const auto idx = Vec<std::uint32_t>::splat(4);  // == size: out of range
  EXPECT_DEATH(w.load(std::span<const std::uint32_t>(mem), idx, Mask(0b1)),
               "precondition");
}

TEST_F(WaveTest, PartialWidthWave) {
  Wave w(cfg, 0, 16, 1024);
  EXPECT_EQ(w.width(), 16u);
  EXPECT_EQ(w.valid().count(), 16u);
  w.valu(Mask::full(16));
  EXPECT_DOUBLE_EQ(w.cost().valu_lane_ops, 16.0);
}

}  // namespace
}  // namespace gcg::simgpu
