#include "simgpu/persistent.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gcg::simgpu {
namespace {

class PersistentTest : public ::testing::Test {
 protected:
  DeviceConfig cfg = test_device();  // 4 CUs
  PersistentOptions opts;            // 4 waves/CU -> 16 workers
};

TEST_F(PersistentTest, AllWorkersRunUntilDone) {
  std::vector<int> steps(16, 0);
  const auto r = run_persistent(cfg, opts, [&](unsigned id, Wave& w) {
    w.valu(Mask::full(8));
    if (++steps[id] == 3) return StepStatus::kDone;
    return StepStatus::kWorked;
  });
  for (int s : steps) EXPECT_EQ(s, 3);
  EXPECT_EQ(r.wave_clock.size(), 16u);
  for (auto sw : r.steps_worked) EXPECT_EQ(sw, 2u);  // last step was kDone
}

TEST_F(PersistentTest, EarliestClockWorkerStepsNext) {
  // Worker 0 does heavy steps; others light. The executor must interleave
  // such that light workers complete many steps while worker 0 does few.
  std::vector<int> steps(16, 0);
  std::vector<unsigned> order;
  run_persistent(cfg, opts, [&](unsigned id, Wave& w) {
    order.push_back(id);
    w.valu(Mask::full(8), id == 0 ? 1000.0 : 1.0);
    if (++steps[id] == 5) return StepStatus::kDone;
    return StepStatus::kWorked;
  });
  // After worker 0's first heavy step, all light workers finish all their
  // steps before worker 0 steps again.
  int zero_steps_in_first_half = 0;
  for (std::size_t i = 0; i < order.size() / 2; ++i) {
    zero_steps_in_first_half += (order[i] == 0);
  }
  EXPECT_LE(zero_steps_in_first_half, 2);
}

TEST_F(PersistentTest, IdleStepsChargeIdleCycles) {
  int calls = 0;
  const auto r = run_persistent(cfg, opts, [&](unsigned, Wave&) {
    ++calls;
    return calls <= 16 ? StepStatus::kIdle : StepStatus::kDone;
  });
  std::uint64_t idles = 0;
  for (auto i : r.steps_idle) idles += i;
  EXPECT_EQ(idles, 16u);
  double clock_sum = 0;
  for (double c : r.wave_clock) clock_sum += c;
  EXPECT_GE(clock_sum, 16 * opts.idle_cycles);
}

TEST_F(PersistentTest, MakespanIsMaxClockPlusOverhead) {
  const auto r = run_persistent(cfg, opts, [&](unsigned id, Wave& w) {
    w.valu(Mask::full(8), id == 3 ? 777.0 : 1.0);
    return StepStatus::kDone;
  });
  double max_clock = 0;
  for (double c : r.wave_clock) max_clock = std::max(max_clock, c);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, max_clock + cfg.kernel_launch_cycles);
}

TEST_F(PersistentTest, WaveImbalanceDetectsSkew) {
  // Busy time only accumulates on kWorked steps, so do the work first and
  // retire on the following (free) step.
  std::vector<int> steps(16, 0);
  const auto skewed = run_persistent(cfg, opts, [&](unsigned id, Wave& w) {
    if (steps[id]++ == 0) {
      w.valu(Mask::full(8), id == 0 ? 100.0 : 1.0);
      return StepStatus::kWorked;
    }
    return StepStatus::kDone;
  });
  EXPECT_GT(skewed.wave_imbalance(), 5.0);

  std::fill(steps.begin(), steps.end(), 0);
  const auto flat = run_persistent(cfg, opts, [&](unsigned id, Wave& w) {
    if (steps[id]++ == 0) {
      w.valu(Mask::full(8), 10.0);
      return StepStatus::kWorked;
    }
    return StepStatus::kDone;
  });
  EXPECT_NEAR(flat.wave_imbalance(), 1.0, 1e-9);
}

TEST_F(PersistentTest, WorkerLaneIdsAreDistinct) {
  std::vector<std::uint32_t> first_ids;
  run_persistent(cfg, opts, [&](unsigned, Wave& w) {
    first_ids.push_back(w.global_ids()[0]);
    return StepStatus::kDone;
  });
  std::sort(first_ids.begin(), first_ids.end());
  EXPECT_EQ(std::unique(first_ids.begin(), first_ids.end()), first_ids.end());
}

TEST_F(PersistentTest, MaxStepsSafetyValveAborts) {
  PersistentOptions bounded = opts;
  bounded.max_steps = 10;
  EXPECT_DEATH(run_persistent(cfg, bounded,
                              [&](unsigned, Wave&) { return StepStatus::kIdle; }),
               "max_steps");
}

TEST_F(PersistentTest, BusyHintControlsLatencyPricing) {
  // Few queued chunks = few waves with requests in flight = less latency
  // hiding. The hint must raise the exposed-latency price accordingly.
  auto one_shot = [&](std::uint64_t hint) {
    PersistentOptions o = opts;
    o.busy_waves_hint = hint;
    return run_persistent(cfg, o, [&](unsigned, Wave& w) {
      w.valu(Mask::full(8));
      return StepStatus::kDone;
    });
  };
  const auto starved = one_shot(1);       // one busy wave total
  const auto full = one_shot(0);          // 0 = all resident waves busy
  EXPECT_GT(starved.mem_latency_cost, full.mem_latency_cost);
  EXPECT_DOUBLE_EQ(starved.mem_latency_cost, cfg.mem_latency_cycles);
}

TEST_F(PersistentTest, CachePointerReachesSteps) {
  CacheSim cache(cfg.l2_bytes, cfg.cacheline_bytes, cfg.l2_ways);
  PersistentOptions o = opts;
  o.cache = &cache;
  std::vector<std::uint32_t> mem(64, 1);
  run_persistent(cfg, o, [&](unsigned, Wave& w) {
    w.load_uniform(std::span<const std::uint32_t>(mem), 0);
    return StepStatus::kDone;
  });
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 15u);  // 16 workers, same line
}

TEST_F(PersistentTest, FreshCostCountersEachStep) {
  run_persistent(cfg, opts, [&](unsigned, Wave& w) {
    EXPECT_DOUBLE_EQ(w.cost().valu_instructions, 0.0);
    w.valu(Mask::full(8), 5.0);
    return StepStatus::kDone;
  });
}

}  // namespace
}  // namespace gcg::simgpu
