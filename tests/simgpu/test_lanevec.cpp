#include "simgpu/lanevec.hpp"

#include <gtest/gtest.h>

namespace gcg::simgpu {
namespace {

TEST(Mask, FullAndNone) {
  EXPECT_EQ(Mask::none().count(), 0u);
  EXPECT_FALSE(Mask::none().any());
  EXPECT_EQ(Mask::full(8).count(), 8u);
  EXPECT_EQ(Mask::full(64).count(), 64u);
  EXPECT_EQ(Mask::full(64).bits(), ~std::uint64_t{0});
}

TEST(Mask, SetClearTest) {
  Mask m;
  m.set(3);
  m.set(63);
  EXPECT_TRUE(m.test(3));
  EXPECT_TRUE(m.test(63));
  EXPECT_FALSE(m.test(4));
  EXPECT_EQ(m.count(), 2u);
  m.clear(3);
  EXPECT_FALSE(m.test(3));
  EXPECT_EQ(m.count(), 1u);
}

TEST(Mask, BitwiseOps) {
  const Mask a(0b1100), b(0b1010);
  EXPECT_EQ((a & b).bits(), 0b1000u);
  EXPECT_EQ((a | b).bits(), 0b1110u);
  EXPECT_EQ((a ^ b).bits(), 0b0110u);
  EXPECT_EQ(a.andnot(b).bits(), 0b0100u);
}

TEST(Mask, FirstFindsLowestLane) {
  EXPECT_EQ(Mask(0b1000).first(), 3u);
  EXPECT_EQ(Mask::lane(17).first(), 17u);
}

TEST(Mask, CompoundAssignment) {
  Mask m(0b0110);
  m &= Mask(0b0011);
  EXPECT_EQ(m.bits(), 0b0010u);
  m |= Mask(0b1000);
  EXPECT_EQ(m.bits(), 0b1010u);
}

TEST(Vec, SplatAndIndex) {
  const auto v = Vec<int>::splat(7);
  for (unsigned i = 0; i < kMaxLanes; ++i) EXPECT_EQ(v[i], 7);
  Vec<int> w;
  w[5] = 42;
  EXPECT_EQ(w[5], 42);
  EXPECT_EQ(w[4], 0);  // zero-initialized aggregate
}

TEST(Where, FiltersByPredicateAndMask) {
  Vec<int> v;
  for (unsigned i = 0; i < 8; ++i) v[i] = static_cast<int>(i);
  const Mask active = Mask::full(8);
  const Mask evens = where(v, active, [](int x) { return x % 2 == 0; });
  EXPECT_EQ(evens.bits(), 0b01010101u);
  // Inactive lanes never pass, even if the predicate would hold.
  const Mask limited = where(v, Mask(0b11), [](int) { return true; });
  EXPECT_EQ(limited.bits(), 0b11u);
}

TEST(Where2, ComparesTwoVectors) {
  Vec<int> a, b;
  for (unsigned i = 0; i < 4; ++i) {
    a[i] = static_cast<int>(i);
    b[i] = 2;
  }
  const Mask lt = where2(a, b, Mask::full(4), [](int x, int y) { return x < y; });
  EXPECT_EQ(lt.bits(), 0b0011u);
}

TEST(Select, BlendsByMask) {
  const auto a = Vec<int>::splat(1);
  const auto b = Vec<int>::splat(2);
  const auto out = select(Mask(0b101), a, b);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 1);
  EXPECT_EQ(out[3], 2);
}

}  // namespace
}  // namespace gcg::simgpu
