#include "simgpu/cache.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simgpu/dispatch.hpp"

namespace gcg::simgpu {
namespace {

TEST(CacheSim, ColdMissesThenHits) {
  CacheSim c(64 * 1024, 64, 4);
  EXPECT_FALSE(c.access(1));
  EXPECT_FALSE(c.access(2));
  EXPECT_TRUE(c.access(1));
  EXPECT_TRUE(c.access(2));
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
}

TEST(CacheSim, CapacityEviction) {
  // Tiny cache: 4 lines total. Streaming 8 distinct lines twice: the
  // second pass must still mostly miss (working set exceeds capacity).
  CacheSim c(4 * 64, 64, 2);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t line = 0; line < 8; ++line) c.access(line);
  }
  EXPECT_GT(c.misses(), 10u);
}

TEST(CacheSim, LruKeepsHotLine) {
  // 1 set x 2 ways: keep re-touching line A while streaming B,C,B,C...
  CacheSim c(2 * 64, 64, 2);
  EXPECT_EQ(c.sets(), 1u);
  c.access(100);  // miss, insert A
  for (std::uint64_t i = 0; i < 6; ++i) {
    c.access(200 + (i % 2));  // B/C alternate, evicting each other
    EXPECT_TRUE(c.access(100)) << i;  // A stays resident (recently used)
  }
}

TEST(CacheSim, ResetClearsEverything) {
  CacheSim c(64 * 1024, 64, 4);
  c.access(5);
  c.access(5);
  c.reset();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_FALSE(c.access(5));  // cold again
}

TEST(CacheSim, FitsWorkingSetPerfectlyAfterWarmup) {
  CacheSim c(1024 * 64, 64, 16);
  for (std::uint64_t line = 0; line < 512; ++line) c.access(line);  // warm
  const auto warm_misses = c.misses();
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t line = 0; line < 512; ++line) c.access(line);
  }
  // Well under capacity: no more (or very few, from set conflicts) misses.
  EXPECT_LE(c.misses() - warm_misses, 16u);
}

// --- integration with the wave cost model ---------------------------------

TEST(CacheIntegration, HitsReduceWaveCost) {
  DeviceConfig cfg = test_device();
  std::vector<std::uint32_t> mem(1024);
  std::iota(mem.begin(), mem.end(), 0u);
  auto kernel = [&](Wave& w) {
    Vec<std::uint32_t> idx;
    for (unsigned i = 0; i < w.width(); ++i) idx[i] = i * 16;
    for (int rep = 0; rep < 8; ++rep) {
      w.load(std::span<const std::uint32_t>(mem), idx, Mask::full(w.width()));
    }
  };
  const LaunchResult cold = dispatch_waves(cfg, 8, 8, kernel, nullptr);

  CacheSim l2(cfg.l2_bytes, cfg.cacheline_bytes, cfg.l2_ways);
  const LaunchResult cached = dispatch_waves(cfg, 8, 8, kernel, &l2);
  EXPECT_GT(cached.total.mem_lines_hit, 0u);
  EXPECT_GT(cached.total.mem_instructions_hit, 0u);
  EXPECT_LT(cached.kernel_cycles, cold.kernel_cycles);
  // Same functional traffic either way.
  EXPECT_EQ(cached.total.mem_transactions, cold.total.mem_transactions);
}

TEST(CacheIntegration, DistinctBuffersDoNotAlias) {
  DeviceConfig cfg = test_device();
  std::vector<std::uint32_t> a(16, 1), b(16, 2);
  CacheSim l2(cfg.l2_bytes, cfg.cacheline_bytes, cfg.l2_ways);
  dispatch_waves(cfg, 8, 8,
                 [&](Wave& w) {
                   const auto idx = Vec<std::uint32_t>::splat(0);
                   w.load(std::span<const std::uint32_t>(a), idx, Mask(0b1));
                   w.load(std::span<const std::uint32_t>(b), idx, Mask(0b1));
                 },
                 &l2);
  // Both first-touches must miss: different base addresses, different lines.
  EXPECT_EQ(l2.misses(), 2u);
}

TEST(CacheIntegration, DeviceOwnsPersistentL2State) {
  DeviceConfig cfg = test_device();
  cfg.enable_l2_cache = true;
  Device dev(cfg);
  ASSERT_NE(dev.l2(), nullptr);
  std::vector<std::uint32_t> mem(256, 7);
  auto kernel = [&](Wave& w) {
    w.load_uniform(std::span<const std::uint32_t>(mem), 0);
  };
  dev.launch_waves(8, 8, kernel);
  const auto first_misses = dev.l2()->misses();
  dev.launch_waves(8, 8, kernel);  // same line again: warm across launches
  EXPECT_EQ(dev.l2()->misses(), first_misses);
  EXPECT_GT(dev.l2()->hits(), 0u);

  DeviceConfig off = test_device();
  Device plain(off);
  EXPECT_EQ(plain.l2(), nullptr);
}

TEST(CacheIntegration, NoCacheMeansNoHitCounters) {
  DeviceConfig cfg = test_device();
  std::vector<std::uint32_t> mem(64, 3);
  const LaunchResult r = dispatch_waves(cfg, 8, 8, [&](Wave& w) {
    const auto idx = Vec<std::uint32_t>::splat(0);
    w.load(std::span<const std::uint32_t>(mem), idx, Mask::full(8));
    w.load(std::span<const std::uint32_t>(mem), idx, Mask::full(8));
  });
  EXPECT_EQ(r.total.mem_lines_hit, 0u);
  EXPECT_EQ(r.total.mem_instructions_hit, 0u);
}

}  // namespace
}  // namespace gcg::simgpu
