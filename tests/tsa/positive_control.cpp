// Positive control for the thread-safety negative-compile suite: a class
// using every annotation the concurrent core relies on, written
// correctly. Compiled two ways:
//
//  * as ctest `tsa_positive_control` (PASS-expected) under clang with
//    -Werror=thread-safety* — if this file ever warns, the suite's
//    FAIL-expected cases prove nothing;
//  * as the gcg_tsa_positive object library in the regular build, which
//    keeps it in compile_commands.json so the clang-tidy lane analyzes
//    the wrapper headers through a real user.
//
// The seeded-violation cases in cases/ are each one mutation away from
// the patterns here.
#include <cstdint>
#include <deque>

#include "util/sync.hpp"

namespace gcg::tsa_test {

class BoundedCounter {
 public:
  // LockGuard: scoped capability covers every guarded access in scope.
  void add(std::uint64_t n) GCG_EXCLUDES(mu_) {
    sync::LockGuard lock(mu_);
    value_ += n;
    history_.push_back(value_);
    trim_locked();
    cv_.notify_all();
  }

  // Explicit while-loop waits (CondVar has no predicate overloads; see
  // util/sync.hpp): the guarded read stays under the held capability.
  std::uint64_t wait_at_least(std::uint64_t threshold) GCG_EXCLUDES(mu_) {
    sync::LockGuard lock(mu_);
    while (value_ < threshold) cv_.wait(mu_);
    return value_;
  }

  // Manual lock()/unlock() protocol, balanced on every path.
  bool try_add(std::uint64_t n) GCG_EXCLUDES(mu_) {
    if (!mu_.try_lock()) return false;
    value_ += n;
    mu_.unlock();
    return true;
  }

  std::uint64_t value() const GCG_EXCLUDES(mu_) {
    sync::LockGuard lock(mu_);
    return value_;
  }

 private:
  // REQUIRES: callable only with mu_ held; callers above prove it.
  void trim_locked() GCG_REQUIRES(mu_) {
    while (history_.size() > kMaxHistory) history_.pop_front();
  }

  static constexpr std::size_t kMaxHistory = 16;

  mutable sync::Mutex mu_;
  sync::CondVar cv_;
  std::uint64_t value_ GCG_GUARDED_BY(mu_) = 0;
  std::deque<std::uint64_t> history_ GCG_GUARDED_BY(mu_);
};

// The harness compiles with -fsyntax-only, but the object-library build
// needs a referenced symbol so the TU is not empty.
std::uint64_t exercise_bounded_counter() {
  BoundedCounter c;
  c.add(3);
  (void)c.try_add(4);
  return c.wait_at_least(3) + c.value();
}

}  // namespace gcg::tsa_test
