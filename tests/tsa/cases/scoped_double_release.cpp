// Seeded violation: manually unlocking a mutex a LockGuard still owns —
// the guard's destructor will release it a second time. Expected
// diagnostic: "releasing mutex 'mu_' that was not held" (at the manual
// unlock the scoped capability already accounted for the hold once the
// analysis replays the paths).
#include "util/sync.hpp"

namespace {

class DoubleRelease {
 public:
  void poke() {
    gcg::sync::LockGuard lock(mu_);
    ++value_;
    mu_.unlock();  // guard's destructor unlocks again
  }

 private:
  gcg::sync::Mutex mu_;
  int value_ GCG_GUARDED_BY(mu_) = 0;
};

void use() { DoubleRelease{}.poke(); }

}  // namespace
