// Seeded violation: CondVar::wait(mu) without holding mu — undefined
// behaviour at runtime, a GCG_REQUIRES violation at compile time.
// Expected diagnostic: "calling function 'wait' requires holding mutex".
#include "util/sync.hpp"

namespace {

class Waiter {
 public:
  void wait_ready() {
    while (!ready_) cv_.wait(mu_);  // mu_ never locked (and ready_ unguarded)
  }

 private:
  gcg::sync::Mutex mu_;
  gcg::sync::CondVar cv_;
  bool ready_ GCG_GUARDED_BY(mu_) = false;
};

void use() { Waiter{}.wait_ready(); }

}  // namespace
