// Seeded violation: acquiring a mutex already held (self-deadlock with a
// non-recursive mutex). Expected diagnostic: "acquiring mutex 'mu_' that
// is already held".
#include "util/sync.hpp"

namespace {

class Doubler {
 public:
  void poke() {
    gcg::sync::LockGuard outer(mu_);
    gcg::sync::LockGuard inner(mu_);  // deadlock: mu_ already held
    ++value_;
  }

 private:
  gcg::sync::Mutex mu_;
  int value_ GCG_GUARDED_BY(mu_) = 0;
};

void use() { Doubler{}.poke(); }

}  // namespace
