// Seeded violation: lock held on one branch only, then an unconditional
// guarded access — the classic conditional-locking bug. Expected
// diagnostic: "mutex 'mu_' is not held on every path through here".
#include "util/sync.hpp"

namespace {

class Conditional {
 public:
  void poke(bool locked) {
    if (locked) mu_.lock();
    ++value_;  // unlocked on the !locked path
    if (locked) mu_.unlock();
  }

 private:
  gcg::sync::Mutex mu_;
  int value_ GCG_GUARDED_BY(mu_) = 0;
};

void use() { Conditional{}.poke(true); }

}  // namespace
