// Seeded violation: ignoring try_lock's result and touching guarded
// state anyway — GCG_TRY_ACQUIRE(true) grants the capability only on the
// success branch, and there is no branch here. Expected diagnostic:
// "writing variable 'value_' requires holding mutex 'mu_'".
#include "util/sync.hpp"

namespace {

class Optimist {
 public:
  void poke() {
    (void)mu_.try_lock();  // result unchecked: capability not established
    ++value_;
    mu_.unlock();
  }

 private:
  gcg::sync::Mutex mu_;
  int value_ GCG_GUARDED_BY(mu_) = 0;
};

void use() { Optimist{}.poke(); }

}  // namespace
