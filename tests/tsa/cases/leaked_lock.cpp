// Seeded violation: manual lock() with no unlock() on the way out.
// Expected diagnostic: "mutex 'mu_' is still held at the end of function".
#include "util/sync.hpp"

namespace {

class Leaker {
 public:
  void poke() {
    mu_.lock();
    ++value_;
    // missing mu_.unlock()
  }

 private:
  gcg::sync::Mutex mu_;
  int value_ GCG_GUARDED_BY(mu_) = 0;
};

void use() { Leaker{}.poke(); }

}  // namespace
