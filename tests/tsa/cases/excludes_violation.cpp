// Seeded violation: calling a GCG_EXCLUDES(mu_) function while holding
// mu_ — the callee locks mu_ itself, so this self-deadlocks. Expected
// diagnostic: "cannot call function 'add' while mutex 'mu_' is held".
#include "util/sync.hpp"

namespace {

class Counter {
 public:
  void add(int n) GCG_EXCLUDES(mu_) {
    gcg::sync::LockGuard lock(mu_);
    value_ += n;
  }

  void add_twice(int n) {
    gcg::sync::LockGuard lock(mu_);
    add(n);  // deadlock: add() locks mu_ again
    add(n);
  }

 private:
  gcg::sync::Mutex mu_;
  int value_ GCG_GUARDED_BY(mu_) = 0;
};

void use() { Counter{}.add_twice(2); }

}  // namespace
