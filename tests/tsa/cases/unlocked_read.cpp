// Seeded violation: reading a GCG_GUARDED_BY field with no lock held.
// Expected diagnostic: "reading variable 'value_' requires holding mutex".
#include "util/sync.hpp"

namespace {

class Counter {
 public:
  int peek() const {  // missing LockGuard / GCG_REQUIRES
    return value_;
  }

 private:
  mutable gcg::sync::Mutex mu_;
  int value_ GCG_GUARDED_BY(mu_) = 0;
};

int use() { return Counter{}.peek(); }

}  // namespace
