// Seeded violation: unlocking a mutex this thread does not hold.
// Expected diagnostic: "releasing mutex 'mu_' that was not held".
#include "util/sync.hpp"

namespace {

class Releaser {
 public:
  void poke() {
    mu_.unlock();  // never locked
  }

 private:
  gcg::sync::Mutex mu_;
};

void use() { Releaser{}.poke(); }

}  // namespace
