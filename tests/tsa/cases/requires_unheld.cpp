// Seeded violation: calling a GCG_REQUIRES(mu_) function without holding
// mu_. Expected diagnostic: "calling function 'trim_locked' requires
// holding mutex 'mu_'".
#include "util/sync.hpp"

namespace {

class Table {
 public:
  void maintenance() {
    trim_locked();  // missing LockGuard
  }

 private:
  void trim_locked() GCG_REQUIRES(mu_) { ++trimmed_; }

  gcg::sync::Mutex mu_;
  int trimmed_ GCG_GUARDED_BY(mu_) = 0;
};

void use() { Table{}.maintenance(); }

}  // namespace
