// Seeded violation: holding mutex A while touching a field guarded by
// mutex B. Expected diagnostic: "requires holding mutex 'b_mu_'".
#include "util/sync.hpp"

namespace {

class TwoLocks {
 public:
  void bump() {
    gcg::sync::LockGuard lock(a_mu_);  // wrong lock for b_value_
    ++b_value_;
  }

 private:
  gcg::sync::Mutex a_mu_;
  gcg::sync::Mutex b_mu_;
  int b_value_ GCG_GUARDED_BY(b_mu_) = 0;
};

void use() { TwoLocks{}.bump(); }

}  // namespace
