// Seeded violation: writing a GCG_GUARDED_BY field with no lock held.
// Expected diagnostic: "writing variable 'value_' requires holding mutex
// exclusively".
#include "util/sync.hpp"

namespace {

class Counter {
 public:
  void set(int v) {  // missing LockGuard / GCG_REQUIRES
    value_ = v;
  }

 private:
  gcg::sync::Mutex mu_;
  int value_ GCG_GUARDED_BY(mu_) = 0;
};

void use() { Counter{}.set(1); }

}  // namespace
