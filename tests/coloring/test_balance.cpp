#include "coloring/balance.hpp"

#include <gtest/gtest.h>

#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "graph/gen/grid.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

TEST(Balance, PreservesValidityAndColorCount) {
  const Csr g = make_barabasi_albert(400, 3, 5);
  const SeqColoring c = greedy_color(g, GreedyOrder::kLargestFirst);
  const BalanceResult b = balance_colors(g, c.colors);
  EXPECT_TRUE(check::is_valid_coloring(g, b.colors));
  EXPECT_EQ(b.num_colors, c.num_colors);
}

TEST(Balance, ReducesSkewOnGreedyColorings) {
  // Greedy first-fit on a scale-free graph puts most vertices in the
  // first few classes and a handful in the last ones.
  const Csr g = make_barabasi_albert(600, 4, 11);
  const SeqColoring c = greedy_color(g);
  ASSERT_GT(c.num_colors, 3);
  const BalanceResult b = balance_colors(g, c.colors);
  EXPECT_TRUE(check::is_valid_coloring(g, b.colors));
  EXPECT_LT(b.cv_after, b.cv_before);
  EXPECT_GT(b.moved, 0u);
}

TEST(Balance, AlreadyBalancedIsFixpoint) {
  const Csr g = make_path(12);
  // Perfect 2-coloring: 6/6.
  std::vector<color_t> colors(12);
  for (vid_t v = 0; v < 12; ++v) colors[v] = static_cast<color_t>(v % 2);
  const BalanceResult b = balance_colors(g, colors);
  EXPECT_EQ(b.moved, 0u);
  EXPECT_EQ(b.colors, colors);
}

TEST(Balance, StarCannotImprove) {
  // Star: hub alone in one class, leaves in the other — no legal move.
  const Csr g = make_star(20);
  const SeqColoring c = greedy_color(g);
  const BalanceResult b = balance_colors(g, c.colors);
  EXPECT_TRUE(check::is_valid_coloring(g, b.colors));
  EXPECT_EQ(b.num_colors, 2);
  EXPECT_DOUBLE_EQ(b.cv_after, b.cv_before);
}

TEST(Balance, HandlesTrivialInputs) {
  const Csr e = make_empty(4);
  std::vector<color_t> colors(4, 0);
  const BalanceResult b = balance_colors(e, colors);
  EXPECT_EQ(b.num_colors, 1);
  const Csr zero = make_empty(0);
  const BalanceResult bz = balance_colors(zero, std::vector<color_t>{});
  EXPECT_EQ(bz.num_colors, 0);
}

TEST(Balance, TerminatesWithinRounds) {
  const Csr g = make_barabasi_albert(1000, 4, 1);
  const SeqColoring c = greedy_color(g);
  const BalanceResult one = balance_colors(g, c.colors, 1);
  const BalanceResult many = balance_colors(g, c.colors, 8);
  EXPECT_GE(many.moved, one.moved);
  EXPECT_LE(many.cv_after, one.cv_after + 1e-12);
}

}  // namespace
}  // namespace gcg
