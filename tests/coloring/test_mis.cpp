#include "coloring/mis.hpp"

#include <gtest/gtest.h>

#include "graph/gen/grid.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

TEST(MisVerify, AcceptsAndRejectsCorrectly) {
  const Csr g = make_path(4);  // 0-1-2-3
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<std::uint8_t>{1, 0, 1, 0}));
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<std::uint8_t>{0, 1, 0, 1}));
  // Not independent: adjacent members.
  EXPECT_FALSE(is_maximal_independent_set(g, std::vector<std::uint8_t>{1, 1, 0, 0}));
  // Independent but not maximal: vertex 3 could join.
  EXPECT_FALSE(is_maximal_independent_set(g, std::vector<std::uint8_t>{1, 0, 0, 0}));
}

TEST(GreedyMis, MaximalOnAssortedGraphs) {
  for (const Csr& g : {make_path(20), make_grid2d(9, 9), make_petersen(),
                       make_barabasi_albert(300, 3, 1), make_complete(8)}) {
    const MisResult r = greedy_mis(g);
    EXPECT_TRUE(is_maximal_independent_set(g, r.in_set));
    EXPECT_GT(r.set_size, 0u);
  }
}

TEST(GreedyMis, CompleteGraphHasSizeOne) {
  EXPECT_EQ(greedy_mis(make_complete(10)).set_size, 1u);
}

TEST(GreedyMis, EmptyGraphTakesEveryone) {
  const MisResult r = greedy_mis(make_empty(7));
  EXPECT_EQ(r.set_size, 7u);
}

class LubyMisTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LubyMisTest, MaximalIndependentOnAssortedGraphs) {
  const auto cfg = simgpu::test_device();
  ColoringOptions opts;
  opts.seed = GetParam();
  for (const Csr& g : {make_path(33), make_grid2d(11, 7), make_petersen(),
                       make_barabasi_albert(400, 4, 3), make_star(60),
                       make_complete(12), make_empty(10)}) {
    const MisResult r = luby_mis(cfg, g, opts);
    EXPECT_TRUE(is_maximal_independent_set(g, r.in_set));
    EXPECT_GT(r.rounds, 0u);
    EXPECT_GT(r.total_cycles, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LubyMisTest, ::testing::Values(1, 7, 42, 999));

TEST(LubyMis, DeterministicPerSeed) {
  const auto cfg = simgpu::test_device();
  const Csr g = make_barabasi_albert(300, 3, 2);
  ColoringOptions opts;
  opts.seed = 11;
  EXPECT_EQ(luby_mis(cfg, g, opts).in_set, luby_mis(cfg, g, opts).in_set);
}

TEST(LubyMis, ConvergesInFewRounds) {
  // Luby terminates in O(log n) rounds with high probability.
  const auto cfg = simgpu::test_device();
  const Csr g = make_barabasi_albert(2000, 4, 5);
  const MisResult r = luby_mis(cfg, g);
  EXPECT_LE(r.rounds, 30u);
}

TEST(LubyMis, SetSizeComparableToGreedy) {
  const auto cfg = simgpu::test_device();
  const Csr g = make_grid2d(30, 30);
  const MisResult gpu = luby_mis(cfg, g);
  const MisResult host = greedy_mis(g);
  EXPECT_GT(gpu.set_size, host.set_size / 2);
}

}  // namespace
}  // namespace gcg
