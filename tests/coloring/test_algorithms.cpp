// End-to-end algorithm correctness: every GPU algorithm must produce a
// valid, complete coloring on every graph shape, deterministically.
#include "coloring/runner.hpp"

#include <gtest/gtest.h>

#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "graph/gen/grid.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/random.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

simgpu::DeviceConfig small_device() { return simgpu::test_device(); }

struct Case {
  const char* name;
  Csr graph;
};

std::vector<Case> test_graphs() {
  std::vector<Case> cases;
  cases.push_back({"petersen", make_petersen()});
  cases.push_back({"path", make_path(33)});
  cases.push_back({"odd_cycle", make_cycle(17)});
  cases.push_back({"star", make_star(70)});
  cases.push_back({"complete", make_complete(12)});
  cases.push_back({"grid", make_grid2d(11, 7)});
  cases.push_back({"ba", make_barabasi_albert(300, 3, 5)});
  cases.push_back({"rmat", make_rmat(8, 4, {}, 6)});
  cases.push_back({"er", make_erdos_renyi_gnm(200, 600, 7)});
  cases.push_back({"isolated", make_empty(40)});
  cases.push_back({"single", make_empty(1)});
  return cases;
}

class AlgorithmTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AlgorithmTest, ValidCompleteColoringOnAllShapes) {
  for (const Case& c : test_graphs()) {
    const ColoringRun run = run_coloring(small_device(), c.graph, GetParam());
    EXPECT_TRUE(check::is_valid_coloring(c.graph, run.colors))
        << c.name << ": " << check::verify_coloring(c.graph, run.colors)->to_string();
    EXPECT_EQ(run.num_colors, count_colors(run.colors)) << c.name;
    EXPECT_GT(run.iterations, 0u) << c.name;
    EXPECT_GT(run.total_cycles, 0.0) << c.name;
  }
}

TEST_P(AlgorithmTest, DeterministicForFixedSeed) {
  const Csr g = make_barabasi_albert(250, 3, 9);
  ColoringOptions opts;
  opts.seed = 1234;
  const ColoringRun a = run_coloring(small_device(), g, GetParam(), opts);
  const ColoringRun b = run_coloring(small_device(), g, GetParam(), opts);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_DOUBLE_EQ(a.total_cycles, b.total_cycles);
}

TEST_P(AlgorithmTest, ColorsLowerBoundedByChromaticNumber) {
  // No valid coloring can beat chi: K12 needs 12, odd cycle needs 3.
  const ColoringRun k = run_coloring(small_device(), make_complete(12), GetParam());
  EXPECT_GE(k.num_colors, 12);
  const ColoringRun c = run_coloring(small_device(), make_cycle(17), GetParam());
  EXPECT_GE(c.num_colors, 3);
}

TEST_P(AlgorithmTest, ActivityAccountsForEveryVertex) {
  const Csr g = make_barabasi_albert(300, 3, 4);
  const ColoringRun run = run_coloring(small_device(), g, GetParam());
  std::uint64_t colored = 0;
  std::uint64_t prev_active = g.num_vertices();
  for (const auto& pt : run.activity) {
    colored += pt.colored_this_iter;
    EXPECT_LE(pt.active_vertices, prev_active);  // frontier never grows
    EXPECT_GT(pt.colored_this_iter, 0u);
    prev_active = pt.active_vertices;
  }
  EXPECT_EQ(colored, g.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(All, AlgorithmTest,
                         ::testing::ValuesIn(all_algorithms()),
                         [](const auto& info) {
                           std::string n = algorithm_name(info.param);
                           for (auto& c : n) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return n;
                         });

TEST(AlgorithmNames, RoundTrip) {
  for (Algorithm a : all_algorithms()) {
    EXPECT_EQ(algorithm_from_name(algorithm_name(a)), a);
  }
  EXPECT_THROW(algorithm_from_name("nope"), std::invalid_argument);
}

TEST(AlgorithmSemantics, MaxMinUsesAtMostTwoColorsPerIteration) {
  const Csr g = make_barabasi_albert(400, 3, 2);
  const ColoringRun run = run_coloring(small_device(), g, Algorithm::kBaseline);
  EXPECT_LE(run.num_colors, static_cast<int>(2 * run.iterations));
  // And JPL at most one per iteration.
  const ColoringRun jpl = run_coloring(small_device(), g, Algorithm::kJpl);
  EXPECT_LE(jpl.num_colors, static_cast<int>(jpl.iterations));
}

TEST(AlgorithmSemantics, MaxMinHalvesJplIterations) {
  // Coloring two classes per round should need materially fewer rounds.
  const Csr g = make_erdos_renyi_gnm(500, 2500, 3);
  const auto mm = run_coloring(small_device(), g, Algorithm::kBaseline);
  const auto jpl = run_coloring(small_device(), g, Algorithm::kJpl);
  EXPECT_LT(mm.iterations, jpl.iterations);
}

TEST(AlgorithmSemantics, SpeculativeMatchesGreedyQualityBallpark) {
  const Csr g = make_erdos_renyi_gnm(500, 2500, 5);
  const auto spec = run_coloring(small_device(), g, Algorithm::kSpeculative);
  const auto greedy = greedy_color(g, GreedyOrder::kNatural);
  // Speculative is a parallel greedy: same color-count ballpark (within 2x),
  // and typically far fewer iterations than JPL.
  EXPECT_LE(spec.num_colors, greedy.num_colors * 2);
  EXPECT_LT(spec.iterations, 64u);
}

TEST(AlgorithmSemantics, WorklistVariantsMatchBaselineColoring) {
  // Same priorities, same independent sets: worklist and steal must produce
  // the exact same colors as the topology-driven baseline.
  const Csr g = make_barabasi_albert(300, 4, 8);
  ColoringOptions opts;
  opts.seed = 99;
  const auto base = run_coloring(small_device(), g, Algorithm::kBaseline, opts);
  const auto edge =
      run_coloring(small_device(), g, Algorithm::kEdgeParallel, opts);
  const auto wl = run_coloring(small_device(), g, Algorithm::kWorklist, opts);
  const auto stat =
      run_coloring(small_device(), g, Algorithm::kPersistentStatic, opts);
  const auto steal = run_coloring(small_device(), g, Algorithm::kSteal, opts);
  const auto hybrid = run_coloring(small_device(), g, Algorithm::kHybrid, opts);
  const auto hsteal =
      run_coloring(small_device(), g, Algorithm::kHybridSteal, opts);
  EXPECT_EQ(base.colors, edge.colors);
  EXPECT_EQ(base.colors, wl.colors);
  EXPECT_EQ(base.colors, stat.colors);
  EXPECT_EQ(base.colors, steal.colors);
  EXPECT_EQ(base.colors, hybrid.colors);
  EXPECT_EQ(base.colors, hsteal.colors);
  EXPECT_EQ(base.iterations, wl.iterations);
}

TEST(AlgorithmSemantics, StealVariantsActuallySteal) {
  // On a skewed graph the first iterations give some waves hub-heavy
  // chunks; their neighbours must steal at least once. Chunk size 8 keeps
  // several chunks per worker (32 workers on the test device).
  const Csr g = make_barabasi_albert(800, 4, 13);
  ColoringOptions steal_opts;
  steal_opts.chunk_size = 8;
  const auto run = run_coloring(small_device(), g, Algorithm::kSteal, steal_opts);
  EXPECT_GT(run.steal.pops, 0u);
  EXPECT_GT(run.steal.steal_attempts, 0u);
  EXPECT_GT(run.steal.steal_hits, 0u);
}

TEST(AlgorithmSemantics, HybridBinsAreExercised) {
  // star(1500) on the test device: hub degree 1500 > group threshold,
  // leaves degree 1 <= wave threshold.
  ColoringOptions opts;
  opts.wave_degree_threshold = 4;
  opts.group_degree_threshold = 64;
  const Csr g = make_star(1500);
  const auto run = run_coloring(small_device(), g, Algorithm::kHybrid, opts);
  EXPECT_TRUE(check::is_valid_coloring(g, run.colors));
  // Max-min on a star: leaves split into max/min classes around the hub's
  // priority, the hub takes a third color once alone. 2 or 3 colors.
  EXPECT_GE(run.num_colors, 2);
  EXPECT_LE(run.num_colors, 3);
}

TEST(AlgorithmSemantics, PriorityModeChangesColoring) {
  const Csr g = make_barabasi_albert(300, 3, 21);
  ColoringOptions rnd;
  rnd.priority = PriorityMode::kRandom;
  ColoringOptions deg;
  deg.priority = PriorityMode::kDegreeBiased;
  const auto a = run_coloring(small_device(), g, Algorithm::kBaseline, rnd);
  const auto b = run_coloring(small_device(), g, Algorithm::kBaseline, deg);
  EXPECT_TRUE(check::is_valid_coloring(g, b.colors));
  EXPECT_NE(a.colors, b.colors);
}

TEST(AlgorithmSemantics, ChunkSizeDoesNotChangeResult) {
  const Csr g = make_barabasi_albert(300, 3, 2);
  ColoringOptions a, b;
  a.chunk_size = 8;
  b.chunk_size = 128;
  const auto ra = run_coloring(small_device(), g, Algorithm::kSteal, a);
  const auto rb = run_coloring(small_device(), g, Algorithm::kSteal, b);
  EXPECT_EQ(ra.colors, rb.colors);
}

TEST(AlgorithmSemantics, VictimPolicyDoesNotChangeResult) {
  const Csr g = make_barabasi_albert(300, 3, 2);
  std::vector<color_t> reference;
  for (VictimPolicy p :
       {VictimPolicy::kRandom, VictimPolicy::kRichest, VictimPolicy::kRing}) {
    ColoringOptions opts;
    opts.victim = p;
    const auto run = run_coloring(small_device(), g, Algorithm::kSteal, opts);
    EXPECT_TRUE(check::is_valid_coloring(g, run.colors));
    if (reference.empty()) {
      reference = run.colors;
    } else {
      EXPECT_EQ(run.colors, reference) << victim_policy_name(p);
    }
  }
}

TEST(AlgorithmSemantics, CollectLaunchesOffKeepsResultsIdentical) {
  const Csr g = make_grid2d(20, 20);
  ColoringOptions on, off;
  off.collect_launches = false;
  const auto a = run_coloring(small_device(), g, Algorithm::kWorklist, on);
  const auto b = run_coloring(small_device(), g, Algorithm::kWorklist, off);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_DOUBLE_EQ(a.total_cycles, b.total_cycles);
  EXPECT_TRUE(b.launches.empty());
  EXPECT_FALSE(a.launches.empty());
}

TEST(AlgorithmSemantics, RunsOnTahitiConfigToo) {
  const Csr g = make_barabasi_albert(500, 4, 3);
  const auto run = run_coloring(simgpu::tahiti(), g, Algorithm::kHybridSteal);
  EXPECT_TRUE(check::is_valid_coloring(g, run.colors));
}

}  // namespace
}  // namespace gcg
