// Kernel-level tests: run individual SIMT kernel bodies on the small test
// device and compare flags against a brute-force host evaluation.
#include "coloring/kernels.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"
#include "simgpu/dispatch.hpp"

namespace gcg {
namespace {

using simgpu::Mask;
using simgpu::Vec;
using simgpu::Wave;

struct KernelFixture : ::testing::Test {
  simgpu::DeviceConfig cfg = simgpu::test_device();

  /// Brute-force the expected flags for the current `colors`.
  std::vector<std::uint8_t> expected_flags(const Csr& g,
                                           const std::vector<std::uint32_t>& prio,
                                           const std::vector<color_t>& colors,
                                           bool min_too) {
    std::vector<std::uint8_t> out(g.num_vertices(), kFlagNone);
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (colors[v] != kUncolored) continue;
      bool is_max = true, is_min = min_too;
      for (vid_t u : g.neighbors(v)) {
        if (colors[u] != kUncolored) continue;
        if (priority_less(prio[v], v, prio[u], u)) {
          is_max = false;
        } else {
          is_min = false;
        }
      }
      out[v] = static_cast<std::uint8_t>((is_max ? kFlagMax : 0) |
                                         (is_min ? kFlagMin : 0));
    }
    return out;
  }
};

TEST_F(KernelFixture, TpvScanMatchesBruteForce) {
  const Csr g = make_barabasi_albert(200, 3, 11);
  const auto prio = make_priorities(g, PriorityMode::kRandom, 4);
  std::vector<color_t> colors(g.num_vertices(), kUncolored);
  // Pre-color a third of the vertices to exercise the uncolored filter.
  for (vid_t v = 0; v < g.num_vertices(); v += 3) colors[v] = 99;
  std::vector<std::uint8_t> flags(g.num_vertices(), 0xAA);

  ColorCtx ctx{DeviceGraph::of(g), prio, colors, flags};
  simgpu::dispatch_waves(cfg, g.num_vertices(), 32, [&](Wave& w) {
    scan_flags_tpv(w, w.valid(), w.global_ids(), ctx, true, true);
  });

  const auto want = expected_flags(g, prio, colors, true);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (colors[v] != kUncolored) continue;  // flags untouched for colored
    ASSERT_EQ(flags[v], want[v]) << "vertex " << v;
  }
}

TEST_F(KernelFixture, TpvScanJplModeOnlySetsMax) {
  const Csr g = make_petersen();
  const auto prio = make_priorities(g, PriorityMode::kRandom, 2);
  std::vector<color_t> colors(10, kUncolored);
  std::vector<std::uint8_t> flags(10, 0);
  ColorCtx ctx{DeviceGraph::of(g), prio, colors, flags};
  simgpu::dispatch_waves(cfg, 10, 8, [&](Wave& w) {
    scan_flags_tpv(w, w.valid(), w.global_ids(), ctx, true, false);
  });
  const auto want = expected_flags(g, prio, colors, false);
  for (vid_t v = 0; v < 10; ++v) {
    ASSERT_EQ(flags[v], want[v]);
    ASSERT_EQ(flags[v] & kFlagMin, 0);
  }
}

TEST_F(KernelFixture, WpvScanMatchesTpvOnHub) {
  const Csr g = make_star(100);  // hub degree 100 >> wave width 8
  const auto prio = make_priorities(g, PriorityMode::kRandom, 6);
  std::vector<color_t> colors(g.num_vertices(), kUncolored);
  std::vector<std::uint8_t> flags_tpv(g.num_vertices(), 0);
  std::vector<std::uint8_t> flags_wpv(g.num_vertices(), 0);

  ColorCtx ctx_t{DeviceGraph::of(g), prio, colors, flags_tpv};
  simgpu::dispatch_waves(cfg, g.num_vertices(), 8, [&](Wave& w) {
    scan_flags_tpv(w, w.valid(), w.global_ids(), ctx_t, true, true);
  });

  ColorCtx ctx_w{DeviceGraph::of(g), prio, colors, flags_wpv};
  simgpu::dispatch_waves(
      cfg, static_cast<std::uint64_t>(g.num_vertices()) * cfg.wavefront_size, 8,
      [&](Wave& w) {
        const auto v = static_cast<vid_t>(w.first_global_id() / cfg.wavefront_size);
        if (v < g.num_vertices()) scan_flags_wpv(w, v, ctx_w, true);
      });

  EXPECT_EQ(flags_tpv, flags_wpv);
}

TEST_F(KernelFixture, GpvScanMatchesTpv) {
  const Csr g = make_barabasi_albert(64, 5, 21);
  const auto prio = make_priorities(g, PriorityMode::kRandom, 3);
  std::vector<color_t> colors(g.num_vertices(), kUncolored);
  for (vid_t v = 0; v < g.num_vertices(); v += 4) colors[v] = 1;
  std::vector<std::uint8_t> flags_tpv(g.num_vertices(), 0);
  std::vector<std::uint8_t> flags_gpv(g.num_vertices(), 0);

  ColorCtx ctx_t{DeviceGraph::of(g), prio, colors, flags_tpv};
  simgpu::dispatch_waves(cfg, g.num_vertices(), 8, [&](Wave& w) {
    scan_flags_tpv(w, w.valid(), w.global_ids(), ctx_t, true, true);
  });

  ColorCtx ctx_g{DeviceGraph::of(g), prio, colors, flags_gpv};
  const unsigned gs = 32;  // 4 waves of 8 lanes cooperate per vertex
  simgpu::dispatch(cfg, static_cast<std::uint64_t>(g.num_vertices()) * gs, gs,
                   [&](simgpu::Group& grp) {
                     const auto v = static_cast<vid_t>(grp.group_id());
                     if (v < g.num_vertices()) scan_flags_gpv(grp, v, ctx_g, true);
                   });

  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (colors[v] != kUncolored) continue;
    ASSERT_EQ(flags_tpv[v], flags_gpv[v]) << "vertex " << v;
  }
}

TEST_F(KernelFixture, CommitColorsWinnersAndAppendsLosers) {
  const Csr g = make_path(8);
  const auto prio = make_priorities(g, PriorityMode::kRandom, 1);
  std::vector<color_t> colors(8, kUncolored);
  std::vector<std::uint8_t> flags(8, kFlagNone);
  flags[0] = kFlagMax;
  flags[3] = kFlagMin;
  flags[5] = kFlagMax | kFlagMin;  // isolated-in-subgraph case

  std::vector<vid_t> frontier_out(8, 0xFFFFFFFF);
  std::vector<std::uint32_t> counter(1, 0);
  FrontierAppender app{frontier_out, counter};

  ColorCtx ctx{DeviceGraph::of(g), prio, colors, flags};
  simgpu::dispatch_waves(cfg, 8, 8, [&](Wave& w) {
    commit_tpv(w, w.valid(), w.global_ids(), ctx, /*base=*/6, true, true, &app);
  });

  EXPECT_EQ(colors[0], 6);   // max color
  EXPECT_EQ(colors[3], 7);   // min color
  EXPECT_EQ(colors[5], 6);   // both flags -> max wins
  EXPECT_EQ(counter[0], 5u); // vertices 1,2,4,6,7 lost
  std::vector<vid_t> losers(frontier_out.begin(), frontier_out.begin() + 5);
  std::sort(losers.begin(), losers.end());
  EXPECT_EQ(losers, (std::vector<vid_t>{1, 2, 4, 6, 7}));
}

TEST_F(KernelFixture, CommitRespectsCheckColored) {
  const Csr g = make_path(4);
  const auto prio = make_priorities(g, PriorityMode::kRandom, 1);
  std::vector<color_t> colors{5, kUncolored, kUncolored, kUncolored};
  std::vector<std::uint8_t> flags(4, kFlagMax);  // stale flag on vertex 0
  ColorCtx ctx{DeviceGraph::of(g), prio, colors, flags};
  simgpu::dispatch_waves(cfg, 4, 8, [&](Wave& w) {
    commit_tpv(w, w.valid(), w.global_ids(), ctx, 9, true, true, nullptr);
  });
  EXPECT_EQ(colors[0], 5);  // untouched: already colored
  EXPECT_EQ(colors[1], 9);
}

TEST_F(KernelFixture, ScanWithExplicitItemsVector) {
  // Frontier-style invocation: lanes hold arbitrary vertex ids.
  const Csr g = make_cycle(12);
  const auto prio = make_priorities(g, PriorityMode::kRandom, 5);
  std::vector<color_t> colors(12, kUncolored);
  std::vector<std::uint8_t> flags(12, 0);
  ColorCtx ctx{DeviceGraph::of(g), prio, colors, flags};

  const std::vector<vid_t> frontier{11, 3, 7};
  simgpu::dispatch_waves(cfg, 3, 8, [&](Wave& w) {
    const Mask m = w.valid();
    const auto items =
        w.load(std::span<const vid_t>(frontier), w.global_ids(), m);
    scan_flags_tpv(w, m, items, ctx, false, true);
  });

  const auto want = expected_flags(g, prio, colors, true);
  for (vid_t v : frontier) EXPECT_EQ(flags[v], want[v]);
  EXPECT_EQ(flags[0], 0);  // untouched non-frontier vertex
}

TEST_F(KernelFixture, DivergenceShowsInSimdEfficiency) {
  // One hub + leaves in the same wave: the hub lane loops 100x alone.
  // Degree-biased priorities keep the hub a live max-candidate to the very
  // end of its list (random priorities would let it early-exit quickly).
  const Csr g = make_star(100);
  const auto prio = make_priorities(g, PriorityMode::kDegreeBiased, 1);
  std::vector<color_t> colors(g.num_vertices(), kUncolored);
  std::vector<std::uint8_t> flags(g.num_vertices(), 0);
  ColorCtx ctx{DeviceGraph::of(g), prio, colors, flags};
  const auto r =
      simgpu::dispatch_waves(cfg, g.num_vertices(), 8, [&](Wave& w) {
        scan_flags_tpv(w, w.valid(), w.global_ids(), ctx, true, true);
      });
  EXPECT_LT(r.simd_efficiency, 0.7);
}

}  // namespace
}  // namespace gcg
