#include "coloring/quality.hpp"

#include <gtest/gtest.h>

#include "coloring/seq_greedy.hpp"
#include "graph/gen/grid.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

TEST(Quality, TwoColorPath) {
  const Csr g = make_path(10);
  const auto c = greedy_color(g);
  const QualityReport q = analyze_quality(g, c.colors);
  EXPECT_EQ(q.num_colors, 2);
  ASSERT_EQ(q.class_sizes.size(), 2u);
  EXPECT_EQ(q.class_sizes[0], 5u);
  EXPECT_EQ(q.class_sizes[1], 5u);
  EXPECT_DOUBLE_EQ(q.largest_class_fraction, 0.5);
  EXPECT_DOUBLE_EQ(q.class_size_cv, 0.0);
  EXPECT_DOUBLE_EQ(q.mean_parallelism, 5.0);
}

TEST(Quality, StarIsImbalanced) {
  const Csr g = make_star(99);
  const auto c = greedy_color(g);
  const QualityReport q = analyze_quality(g, c.colors);
  EXPECT_EQ(q.num_colors, 2);
  EXPECT_DOUBLE_EQ(q.largest_class_fraction, 0.99);
  EXPECT_GT(q.class_size_cv, 0.9);
}

TEST(Quality, HandlesSparseColorIds) {
  // Max-min colorings can skip ids; quality must renumber densely.
  const Csr g = make_path(4);
  const std::vector<color_t> colors{0, 6, 0, 7};
  const QualityReport q = analyze_quality(g, colors);
  EXPECT_EQ(q.num_colors, 3);
  EXPECT_EQ(q.class_sizes[0], 2u);
}

TEST(CompactColors, PreservesOrderAndHandlesUncolored) {
  std::vector<color_t> colors{9, kUncolored, 4, 9, 120};
  const int k = compact_colors(colors);
  EXPECT_EQ(k, 3);
  EXPECT_EQ(colors, (std::vector<color_t>{1, kUncolored, 0, 1, 2}));
}

TEST(CountColors, IgnoresUncolored) {
  EXPECT_EQ(count_colors(std::vector<color_t>{kUncolored, kUncolored}), 0);
  EXPECT_EQ(count_colors(std::vector<color_t>{0, 2, 2, kUncolored}), 2);
}

TEST(UncoloredVertices, ListsExactly) {
  const std::vector<color_t> colors{0, kUncolored, 1, kUncolored};
  EXPECT_EQ(uncolored_vertices(colors), (std::vector<vid_t>{1, 3}));
}

}  // namespace
}  // namespace gcg
