// Edge-case coverage for the shared coloring helpers in common.cpp:
// all-uncolored input, single-vertex domains, and gapped color domains
// (max-min runs legitimately leave gaps).
#include "coloring/common.hpp"

#include <gtest/gtest.h>

namespace gcg {
namespace {

TEST(CountColorsTest, EmptyAndAllUncolored) {
  EXPECT_EQ(count_colors({}), 0);
  const std::vector<color_t> all_unc(7, kUncolored);
  EXPECT_EQ(count_colors(all_unc), 0);
}

TEST(CountColorsTest, SingleVertex) {
  const std::vector<color_t> one = {0};
  EXPECT_EQ(count_colors(one), 1);
  const std::vector<color_t> one_unc = {kUncolored};
  EXPECT_EQ(count_colors(one_unc), 0);
}

TEST(CountColorsTest, GappedDomainCountsDistinctOnly) {
  const std::vector<color_t> gapped = {0, 4, 4, 9, 0, 100};
  EXPECT_EQ(count_colors(gapped), 4);  // {0, 4, 9, 100}
}

TEST(CountColorsTest, IgnoresUncoloredAmongColored) {
  const std::vector<color_t> mixed = {2, kUncolored, 2, kUncolored, 5};
  EXPECT_EQ(count_colors(mixed), 2);
}

TEST(CompactColorsTest, AllUncoloredIsAFixpoint) {
  std::vector<color_t> colors(5, kUncolored);
  EXPECT_EQ(compact_colors(colors), 0);
  for (color_t c : colors) EXPECT_EQ(c, kUncolored);
}

TEST(CompactColorsTest, EmptyInput) {
  std::vector<color_t> colors;
  EXPECT_EQ(compact_colors(colors), 0);
}

TEST(CompactColorsTest, SingleVertexMapsToZero) {
  std::vector<color_t> colors = {41};
  EXPECT_EQ(compact_colors(colors), 1);
  EXPECT_EQ(colors[0], 0);
}

TEST(CompactColorsTest, GappedDomainDensifiesPreservingOrder) {
  std::vector<color_t> colors = {10, 2, 10, 7, 2};
  EXPECT_EQ(compact_colors(colors), 3);
  // Relative order of the old color values is preserved: 2 < 7 < 10.
  EXPECT_EQ(colors, (std::vector<color_t>{2, 0, 2, 1, 0}));
}

TEST(CompactColorsTest, PreservesUncoloredSlots) {
  std::vector<color_t> colors = {6, kUncolored, 3, kUncolored, 6};
  EXPECT_EQ(compact_colors(colors), 2);
  EXPECT_EQ(colors, (std::vector<color_t>{1, kUncolored, 0, kUncolored, 1}));
}

TEST(UncoloredVerticesTest, EdgeCases) {
  EXPECT_TRUE(uncolored_vertices({}).empty());
  const std::vector<color_t> done = {0, 1, 0};
  EXPECT_TRUE(uncolored_vertices(done).empty());
  const std::vector<color_t> mixed = {0, kUncolored, 1, kUncolored};
  EXPECT_EQ(uncolored_vertices(mixed), (std::vector<vid_t>{1, 3}));
}

}  // namespace
}  // namespace gcg
