#include "coloring/priorities.hpp"

#include <gtest/gtest.h>

#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

TEST(Priorities, RandomModeDeterministicPerSeed) {
  const Csr g = make_barabasi_albert(100, 2, 1);
  EXPECT_EQ(make_priorities(g, PriorityMode::kRandom, 7),
            make_priorities(g, PriorityMode::kRandom, 7));
  EXPECT_NE(make_priorities(g, PriorityMode::kRandom, 7),
            make_priorities(g, PriorityMode::kRandom, 8));
}

TEST(Priorities, DegreeBiasedRanksHubsHighest) {
  const Csr g = make_star(50);
  const auto p = make_priorities(g, PriorityMode::kDegreeBiased, 1);
  for (vid_t v = 1; v <= 50; ++v) EXPECT_GT(p[0], p[v]);
}

TEST(Priorities, DegreeBiasedStillBreaksTiesRandomly) {
  const Csr g = make_cycle(64);  // all degree 2
  const auto p = make_priorities(g, PriorityMode::kDegreeBiased, 1);
  std::set<std::uint32_t> distinct(p.begin(), p.end());
  EXPECT_GT(distinct.size(), 32u);
}

TEST(Priorities, PriorityLessIsStrictTotalOrder) {
  // Antisymmetry + totality on distinct (prio, id) pairs.
  EXPECT_TRUE(priority_less(1, 0, 2, 1));
  EXPECT_FALSE(priority_less(2, 1, 1, 0));
  EXPECT_TRUE(priority_less(5, 3, 5, 4));   // tie -> id decides
  EXPECT_FALSE(priority_less(5, 4, 5, 3));
  EXPECT_FALSE(priority_less(5, 3, 5, 3));  // irreflexive
}

TEST(Priorities, NaturalOrderRanksLowerIdsHigher) {
  const Csr g = make_cycle(16);
  const auto p = make_priorities(g, PriorityMode::kNaturalOrder, 1);
  for (vid_t v = 1; v < 16; ++v) EXPECT_GT(p[v - 1], p[v]);
  // Seed-independent by construction.
  EXPECT_EQ(p, make_priorities(g, PriorityMode::kNaturalOrder, 99));
}

TEST(Priorities, ModeNames) {
  EXPECT_STREQ(priority_mode_name(PriorityMode::kRandom), "random");
  EXPECT_STREQ(priority_mode_name(PriorityMode::kDegreeBiased), "degree-biased");
  EXPECT_STREQ(priority_mode_name(PriorityMode::kNaturalOrder), "natural");
}

}  // namespace
}  // namespace gcg
