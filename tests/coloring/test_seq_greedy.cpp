#include "coloring/seq_greedy.hpp"

#include <gtest/gtest.h>

#include "check/coloring.hpp"
#include "graph/gen/grid.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

const GreedyOrder kAllOrders[] = {
    GreedyOrder::kNatural, GreedyOrder::kRandom, GreedyOrder::kLargestFirst,
    GreedyOrder::kSmallestLast, GreedyOrder::kIncidence};

class GreedyOrderTest : public ::testing::TestWithParam<GreedyOrder> {};

TEST_P(GreedyOrderTest, ValidOnAssortedGraphs) {
  for (const Csr& g : {make_petersen(), make_grid2d(13, 9),
                       make_barabasi_albert(400, 3, 5), make_complete(17)}) {
    const SeqColoring c = greedy_color(g, GetParam());
    EXPECT_TRUE(check::is_valid_coloring(g, c.colors));
    EXPECT_EQ(c.num_colors, count_colors(c.colors));
    // Greedy never exceeds max_degree + 1 colors.
    EXPECT_LE(c.num_colors, static_cast<int>(g.max_degree()) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, GreedyOrderTest,
                         ::testing::ValuesIn(kAllOrders),
                         [](const auto& info) {
                           std::string n = greedy_order_name(info.param);
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(SeqGreedy, KnownChromaticNumbers) {
  // Bipartite graphs: exactly 2 colors in any greedy order by id on paths.
  EXPECT_EQ(greedy_color(make_path(50)).num_colors, 2);
  EXPECT_EQ(greedy_color(make_cycle(10)).num_colors, 2);   // even cycle
  EXPECT_EQ(greedy_color(make_cycle(11)).num_colors, 3);   // odd cycle
  EXPECT_EQ(greedy_color(make_complete(7)).num_colors, 7); // K7
  EXPECT_EQ(greedy_color(make_complete_bipartite(4, 6)).num_colors, 2);
  EXPECT_EQ(greedy_color(make_star(20)).num_colors, 2);
  EXPECT_EQ(greedy_color(make_binary_tree(31)).num_colors, 2);
}

TEST(SeqGreedy, PetersenNeedsThree) {
  // chi(Petersen) = 3; natural greedy happens to find it.
  const SeqColoring c = greedy_color(make_petersen());
  EXPECT_TRUE(check::is_valid_coloring(make_petersen(), c.colors));
  EXPECT_EQ(c.num_colors, 3);
}

TEST(SeqGreedy, EmptyAndSingleton) {
  const Csr e = make_empty(3);
  const SeqColoring c = greedy_color(e);
  EXPECT_EQ(c.num_colors, 1);  // all vertices take color 0
  EXPECT_TRUE(check::is_valid_coloring(e, c.colors));
  const Csr one = make_empty(1);
  EXPECT_EQ(greedy_color(one).num_colors, 1);
}

TEST(SeqGreedy, SmallestLastBoundedByDegeneracyPlusOne) {
  for (const Csr& g :
       {make_barabasi_albert(500, 4, 9), make_grid2d(20, 20), make_petersen()}) {
    const vid_t d = degeneracy(g);
    const SeqColoring c = greedy_color(g, GreedyOrder::kSmallestLast);
    EXPECT_LE(c.num_colors, static_cast<int>(d) + 1);
  }
}

TEST(SeqGreedy, DegeneracyKnownValues) {
  EXPECT_EQ(degeneracy(make_path(10)), 1u);
  EXPECT_EQ(degeneracy(make_cycle(10)), 2u);
  EXPECT_EQ(degeneracy(make_complete(6)), 5u);
  EXPECT_EQ(degeneracy(make_binary_tree(31)), 1u);
  EXPECT_EQ(degeneracy(make_star(9)), 1u);
  // BA with m=3: every suffix vertex has 3 seed edges -> degeneracy >= 3.
  EXPECT_GE(degeneracy(make_barabasi_albert(100, 3, 1)), 3u);
}

TEST(SeqGreedy, RandomOrderSeedDeterminism) {
  const Csr g = make_barabasi_albert(200, 3, 2);
  const auto a = greedy_color(g, GreedyOrder::kRandom, 5);
  const auto b = greedy_color(g, GreedyOrder::kRandom, 5);
  EXPECT_EQ(a.colors, b.colors);
}

TEST(SeqGreedy, SmallestLastBeatsNaturalOnSkewedGraph) {
  // Not guaranteed in general, but on BA graphs smallest-last should not
  // be worse (it is the classic quality ordering).
  const Csr g = make_barabasi_albert(2000, 5, 3);
  const int natural = greedy_color(g, GreedyOrder::kNatural).num_colors;
  const int sl = greedy_color(g, GreedyOrder::kSmallestLast).num_colors;
  EXPECT_LE(sl, natural);
}

}  // namespace
}  // namespace gcg
