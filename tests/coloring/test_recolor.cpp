#include "coloring/recolor.hpp"

#include <gtest/gtest.h>

#include "coloring/runner.hpp"
#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "graph/gen/grid.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

TEST(RecolorPass, NeverIncreasesColors) {
  const Csr g = make_barabasi_albert(500, 4, 3);
  const auto base = run_coloring(simgpu::test_device(), g, Algorithm::kBaseline);
  for (ClassOrder order : {ClassOrder::kLargestFirst, ClassOrder::kSmallestFirst,
                           ClassOrder::kReverse}) {
    const RecolorResult r = recolor_pass(g, base.colors, order);
    EXPECT_TRUE(check::is_valid_coloring(g, r.colors));
    EXPECT_LE(r.num_colors, base.num_colors);
  }
}

TEST(RecolorPass, ShrinksIndependentSetColorings) {
  // Max-min colorings are far from greedy-optimal; one pass must recover
  // a large fraction of the gap on a skewed graph.
  const Csr g = make_barabasi_albert(2000, 6, 9);
  const auto base = run_coloring(simgpu::test_device(), g, Algorithm::kBaseline);
  const int greedy = greedy_color(g).num_colors;
  ASSERT_GT(base.num_colors, greedy);  // precondition for the test to matter
  const RecolorResult r = recolor_pass(g, base.colors);
  EXPECT_LT(r.num_colors, base.num_colors);
  // One pass lands within a small margin of plain greedy.
  EXPECT_LE(r.num_colors, greedy * 2 + 2);
}

TEST(RecolorPass, IdempotentOnOptimalColorings) {
  // A 2-coloring of a bipartite graph cannot improve.
  const Csr g = make_complete_bipartite(8, 12);
  const SeqColoring two = greedy_color(g);
  ASSERT_EQ(two.num_colors, 2);
  const RecolorResult r = recolor_pass(g, two.colors);
  EXPECT_EQ(r.num_colors, 2);
}

TEST(ReduceColors, MonotoneAndValid) {
  const Csr g = make_rmat(9, 6, {}, 4);
  const auto base = run_coloring(simgpu::test_device(), g, Algorithm::kJpl);
  const RecolorResult r = reduce_colors(g, base.colors);
  EXPECT_TRUE(check::is_valid_coloring(g, r.colors));
  EXPECT_LE(r.num_colors, base.num_colors);
  EXPECT_GE(r.passes, 1);
}

TEST(ReduceColors, HandlesTrivialGraphs) {
  const Csr e = make_empty(5);
  std::vector<color_t> colors(5, 0);
  const RecolorResult r = reduce_colors(e, colors);
  EXPECT_EQ(r.num_colors, 1);
  const Csr one = make_empty(1);
  const RecolorResult r1 = recolor_pass(one, std::vector<color_t>{0});
  EXPECT_EQ(r1.num_colors, 1);
}

TEST(ReduceColors, RespectsChromaticLowerBound) {
  const Csr g = make_complete(9);
  const auto base = run_coloring(simgpu::test_device(), g, Algorithm::kBaseline);
  const RecolorResult r = reduce_colors(g, base.colors);
  EXPECT_EQ(r.num_colors, 9);
}

}  // namespace
}  // namespace gcg
