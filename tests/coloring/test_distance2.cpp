#include "coloring/distance2.hpp"

#include <gtest/gtest.h>

#include "graph/gen/grid.hpp"
#include "graph/gen/random.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

TEST(Distance2Verify, PathNeedsThreeColorsAtDistance2) {
  const Csr g = make_path(6);
  // Proper d1 coloring that fails d2: 0,1,0,1,...
  std::vector<color_t> d1{0, 1, 0, 1, 0, 1};
  EXPECT_TRUE(check::is_valid_coloring(g, d1));
  const auto v = find_violation_d2(g, d1);
  ASSERT_TRUE(v.has_value());
  // Vertices 0 and 2 share neighbour 1 and color 0.
  EXPECT_EQ(v->u, 0u);
  EXPECT_EQ(v->v, 2u);
  // Period-3 coloring is d2-proper on a path.
  std::vector<color_t> d2{0, 1, 2, 0, 1, 2};
  EXPECT_TRUE(is_valid_coloring_d2(g, d2));
}

TEST(Distance2Verify, UncoloredDetection) {
  const Csr g = make_path(3);
  std::vector<color_t> c{0, kUncolored, 1};
  EXPECT_FALSE(is_valid_coloring_d2(g, c));
  EXPECT_TRUE(is_valid_coloring_d2(g, c, /*require_complete=*/false));
}

TEST(Distance2Greedy, StarNeedsLeafCountPlusOne) {
  // All leaves share the hub: every vertex needs its own color.
  const Csr g = make_star(9);
  const SeqColoring c = greedy_color_d2(g);
  EXPECT_TRUE(is_valid_coloring_d2(g, c.colors));
  EXPECT_EQ(c.num_colors, 10);
}

TEST(Distance2Greedy, ValidOnAssortedGraphs) {
  for (const Csr& g :
       {make_grid2d(9, 7), make_cycle(11), make_petersen(),
        make_erdos_renyi_gnm(150, 450, 3), make_binary_tree(63)}) {
    for (GreedyOrder order : {GreedyOrder::kNatural, GreedyOrder::kRandom,
                              GreedyOrder::kLargestFirst}) {
      const SeqColoring c = greedy_color_d2(g, order, 7);
      EXPECT_TRUE(is_valid_coloring_d2(g, c.colors));
      // Also trivially a valid distance-1 coloring.
      EXPECT_TRUE(check::is_valid_coloring(g, c.colors));
    }
  }
}

TEST(Distance2Greedy, Grid2dUsesAtMostEight) {
  // A 5-point stencil's square graph has max degree 8 at interior points
  // (the 4 diagonal + 4 distance-2-straight vertices count too: 12 total
  // 2-hop neighbours, but first-fit stays small). Just bound it sanely.
  const SeqColoring c = greedy_color_d2(make_grid2d(20, 20));
  EXPECT_TRUE(is_valid_coloring_d2(make_grid2d(20, 20), c.colors));
  EXPECT_LE(c.num_colors, 13);
  EXPECT_GE(c.num_colors, 5);  // grid square graph needs >= 5
}

TEST(Distance2Gpu, MatchesValidityOnAssortedGraphs) {
  const auto cfg = simgpu::test_device();
  for (const Csr& g :
       {make_grid2d(11, 9), make_cycle(17), make_petersen(),
        make_erdos_renyi_gnm(200, 500, 9), make_star(40)}) {
    const ColoringRun run = run_coloring_d2(cfg, g);
    EXPECT_TRUE(is_valid_coloring_d2(g, run.colors));
    EXPECT_EQ(run.num_colors, count_colors(run.colors));
    EXPECT_GT(run.total_cycles, 0.0);
  }
}

TEST(Distance2Gpu, DeterministicAndSeedSensitive) {
  const auto cfg = simgpu::test_device();
  const Csr g = make_erdos_renyi_gnm(150, 400, 2);
  ColoringOptions a, b;
  a.seed = b.seed = 5;
  EXPECT_EQ(run_coloring_d2(cfg, g, a).colors, run_coloring_d2(cfg, g, b).colors);
  b.seed = 6;
  EXPECT_NE(run_coloring_d2(cfg, g, a).colors, run_coloring_d2(cfg, g, b).colors);
}

TEST(Distance2Gpu, ColorCountNearGreedy) {
  const auto cfg = simgpu::test_device();
  const Csr g = make_grid2d(16, 16);
  const ColoringRun run = run_coloring_d2(cfg, g);
  const SeqColoring greedy = greedy_color_d2(g);
  EXPECT_LE(run.num_colors, greedy.num_colors * 2);
}

TEST(Distance2Gpu, CompleteGraphIsAllDistinct) {
  const auto cfg = simgpu::test_device();
  const Csr g = make_complete(9);
  const ColoringRun run = run_coloring_d2(cfg, g);
  EXPECT_EQ(run.num_colors, 9);
}

}  // namespace
}  // namespace gcg
