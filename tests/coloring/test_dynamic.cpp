#include "coloring/dynamic.hpp"

#include <gtest/gtest.h>

#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/special.hpp"
#include "util/rng.hpp"

namespace gcg {
namespace {

TEST(DynamicColoring, StartsFromExistingColoring) {
  const Csr g = make_cycle(8);
  const SeqColoring c = greedy_color(g);
  DynamicColoring dc(g, c.colors);
  EXPECT_EQ(dc.num_colors(), c.num_colors);
  EXPECT_EQ(dc.colors(), c.colors);
  EXPECT_TRUE(check::is_valid_coloring(dc.snapshot(), dc.colors()));
}

TEST(DynamicColoring, NonConflictingEdgeIsFree) {
  const Csr g = make_path(4);  // colors 0,1,0,1
  const SeqColoring c = greedy_color(g);
  DynamicColoring dc(g, c.colors);
  dc.add_edge(0, 3);  // colors 0 and 1: no conflict
  EXPECT_EQ(dc.stats().conflicts_repaired, 0u);
  EXPECT_EQ(dc.colors(), c.colors);
  EXPECT_TRUE(check::is_valid_coloring(dc.snapshot(), dc.colors()));
}

TEST(DynamicColoring, RepairsConflictLocally) {
  const Csr g = make_path(4);  // colors 0,1,0,1
  const SeqColoring c = greedy_color(g);
  DynamicColoring dc(g, c.colors);
  dc.add_edge(0, 2);  // both color 0: conflict
  EXPECT_EQ(dc.stats().conflicts_repaired, 1u);
  EXPECT_EQ(dc.stats().vertices_recolored, 1u);
  EXPECT_TRUE(check::is_valid_coloring(dc.snapshot(), dc.colors()));
}

TEST(DynamicColoring, DuplicateAndSelfEdgesIgnored) {
  const Csr g = make_path(3);
  const SeqColoring c = greedy_color(g);
  DynamicColoring dc(g, c.colors);
  dc.add_edge(0, 1);  // already present
  dc.add_edge(2, 2);  // self loop
  EXPECT_EQ(dc.stats().edges_added, 0u);
}

TEST(DynamicColoring, GrowsCliqueToNColors) {
  // Start from 5 isolated vertices, add all C(5,2) edges: must end at
  // exactly 5 colors, always proper along the way.
  const Csr g = make_empty(5);
  const std::vector<color_t> zeros(5, 0);
  DynamicColoring dc(g, zeros);
  for (vid_t u = 0; u < 5; ++u) {
    for (vid_t v = u + 1; v < 5; ++v) {
      dc.add_edge(u, v);
      ASSERT_TRUE(check::is_valid_coloring(dc.snapshot(), dc.colors()));
    }
  }
  EXPECT_EQ(dc.num_colors(), 5);
}

TEST(DynamicColoring, RandomInsertionStressStaysProper) {
  // Property sweep: random edge stream over an initially colored BA graph.
  const Csr g = make_barabasi_albert(150, 3, 5);
  const SeqColoring c = greedy_color(g);
  DynamicColoring dc(g, c.colors);
  Xoshiro256ss rng(9);
  for (int k = 0; k < 500; ++k) {
    const auto u = static_cast<vid_t>(rng.bounded(150));
    const auto v = static_cast<vid_t>(rng.bounded(150));
    dc.add_edge(u, v);
  }
  const Csr final_graph = dc.snapshot();
  EXPECT_TRUE(check::is_valid_coloring(final_graph, dc.colors()));
  // Palette stays within greedy bounds of the *final* graph.
  EXPECT_LE(dc.num_colors(), static_cast<int>(final_graph.max_degree()) + 1);
  EXPECT_GT(dc.stats().edges_added, 300u);
}

TEST(DynamicColoringDeathTest, RejectsInvalidStartingColors) {
  const Csr g = make_path(3);
  const std::vector<color_t> bad{0, 0, 1};
  EXPECT_DEATH(DynamicColoring(g, bad), "precondition");
}

}  // namespace
}  // namespace gcg
