// Edge-parallel–specific characterization: the approach trades divergence
// for per-arc work and hub atomic contention. These tests pin down that
// trade in the cost counters, not just the colors.
#include <gtest/gtest.h>

#include "coloring/runner.hpp"
#include "check/coloring.hpp"
#include "graph/gen/grid.hpp"
#include "graph/gen/special.hpp"

namespace gcg {
namespace {

ColoringRun run_collect(const Csr& g, Algorithm a) {
  ColoringOptions opts;
  opts.collect_launches = true;
  return run_coloring(simgpu::test_device(), g, a, opts);
}

TEST(EdgeParallel, NearPerfectSimdOnUniformWork) {
  // On a star, thread-per-vertex wedges one lane against 1500 neighbours;
  // edge-parallel lanes each handle exactly one arc.
  const Csr g = make_star(1500);
  const auto edge = run_collect(g, Algorithm::kEdgeParallel);
  const auto base = run_collect(g, Algorithm::kBaseline);
  double edge_eff = 0, base_eff = 0, edge_w = 0, base_w = 0;
  for (const auto& l : edge.launches) {
    edge_eff += l.simd_efficiency * l.total.valu_instructions;
    edge_w += l.total.valu_instructions;
  }
  for (const auto& l : base.launches) {
    base_eff += l.simd_efficiency * l.total.valu_instructions;
    base_w += l.total.valu_instructions;
  }
  EXPECT_GT(edge_eff / edge_w, base_eff / base_w);
}

TEST(EdgeParallel, HubContentionShowsInAtomics) {
  // Every leaf's arc toward the hub clears a bit in the hub's flag byte:
  // the atomic conflict counter must record that serialization.
  const Csr g = make_star(500);
  const auto run = run_collect(g, Algorithm::kEdgeParallel);
  std::uint64_t conflicts = 0;
  for (const auto& l : run.launches) {
    conflicts += l.total.atomic_extra_serializations;
  }
  EXPECT_GT(conflicts, 100u);
  // The vertex-centric baseline issues no atomics at all.
  const auto base = run_collect(g, Algorithm::kBaseline);
  std::uint64_t base_atomics = 0;
  for (const auto& l : base.launches) base_atomics += l.total.atomic_instructions;
  EXPECT_EQ(base_atomics, 0u);
}

TEST(EdgeParallel, PaysArcWorkEveryIteration) {
  // Topology-driven over arcs: per-iteration instruction count does not
  // shrink as vertices get colored (only the uncolored test shortcuts).
  const Csr g = make_grid2d(20, 20);
  const auto run = run_collect(g, Algorithm::kEdgeParallel);
  ASSERT_GE(run.activity.size(), 3u);
  // Each iteration launches over all arcs: cycles stay within 3x of the
  // first iteration even as the frontier collapses.
  const double first = run.activity.front().cycles;
  for (const auto& pt : run.activity) {
    EXPECT_GT(pt.cycles, first / 3.0);
  }
}

TEST(EdgeParallel, JplModeValidToo) {
  // min_too=false path is only reachable through internals for edge mode;
  // the public max-min mode must still match the baseline exactly on
  // tricky shapes (both-flag isolated vertices, multi-component graphs).
  const Csr g = make_cycle(9);
  const auto edge = run_collect(g, Algorithm::kEdgeParallel);
  const auto base = run_collect(g, Algorithm::kBaseline);
  EXPECT_EQ(edge.colors, base.colors);
  EXPECT_TRUE(check::is_valid_coloring(g, edge.colors));
}

}  // namespace
}  // namespace gcg
