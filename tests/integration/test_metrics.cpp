#include "metrics/imbalance.hpp"

#include <gtest/gtest.h>

#include "coloring/runner.hpp"
#include "graph/gen/grid.hpp"
#include "graph/gen/powerlaw.hpp"

namespace gcg {
namespace {

TEST(ImbalanceReport, EmptyLaunchesGiveIdentity) {
  const ImbalanceReport rep = summarize_launches({}, 64);
  EXPECT_DOUBLE_EQ(rep.simd_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(rep.cu_max_over_mean, 1.0);
  EXPECT_DOUBLE_EQ(rep.total_cycles, 0.0);
}

TEST(ImbalanceReport, AggregatesAcrossLaunches) {
  const auto cfg = simgpu::test_device();
  std::vector<simgpu::LaunchResult> launches;
  launches.push_back(simgpu::dispatch_waves(
      cfg, 64, 8, [](simgpu::Wave& w) { w.valu(simgpu::Mask::full(8), 4.0); }));
  launches.push_back(simgpu::dispatch_waves(
      cfg, 64, 8, [](simgpu::Wave& w) { w.valu(simgpu::Mask(0b1), 4.0); }));
  const ImbalanceReport rep = summarize_launches(launches, cfg.wavefront_size);
  // Half the instructions full, half single-lane: eff = (8+1)/16.
  EXPECT_NEAR(rep.simd_efficiency, 9.0 / 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(rep.total_cycles, launches[0].kernel_cycles +
                                         launches[1].kernel_cycles);
  EXPECT_GT(rep.group_cycles_max, 0.0);
  EXPECT_GE(rep.group_cycles_p99, rep.group_cycles_p50);
}

TEST(ImbalanceReport, RegularVsSkewedGraphOrdering) {
  // The motivating observation of the paper: the baseline has near-perfect
  // SIMD efficiency on a grid and poor efficiency on a power-law graph.
  const auto cfg = simgpu::tahiti();
  ColoringOptions opts;
  const auto grid_run =
      run_coloring(cfg, make_grid2d(64, 64), Algorithm::kBaseline, opts);
  const auto ba_run = run_coloring(cfg, make_barabasi_albert(4096, 8, 3),
                                   Algorithm::kBaseline, opts);
  const auto grid_rep = summarize_launches(grid_run.launches, cfg.wavefront_size);
  const auto ba_rep = summarize_launches(ba_run.launches, cfg.wavefront_size);
  EXPECT_GT(grid_rep.simd_efficiency, ba_rep.simd_efficiency + 0.1);
}

TEST(ActivityPoint, DefaultsAreNeutral) {
  const ActivityPoint pt;
  EXPECT_EQ(pt.iteration, 0u);
  EXPECT_EQ(pt.active_vertices, 0u);
  EXPECT_DOUBLE_EQ(pt.simd_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(pt.cu_imbalance, 1.0);
}

}  // namespace
}  // namespace gcg
