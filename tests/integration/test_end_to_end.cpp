// Whole-system integration: suite graphs through every algorithm on the
// Tahiti model, checking the paper's qualitative claims hold end to end.
#include <gtest/gtest.h>

#include "coloring/quality.hpp"
#include "coloring/runner.hpp"
#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "graph/gen/suite.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"

namespace gcg {
namespace {

SuiteOptions quick_suite() {
  SuiteOptions opts;
  opts.scale = 0.05;  // a few thousand vertices per graph
  return opts;
}

/// Performance-shape assertions need enough vertices to fill the 28-CU
/// device; correctness-only tests stay at quick_suite scale.
SuiteOptions perf_suite() {
  SuiteOptions opts;
  opts.scale = 0.25;
  return opts;
}

TEST(EndToEnd, EveryAlgorithmColorsEverySuiteGraph) {
  const auto cfg = simgpu::tahiti();
  for (const auto& entry : make_suite(quick_suite())) {
    for (Algorithm a : all_algorithms()) {
      ColoringOptions opts;
      opts.collect_launches = false;
      const ColoringRun run = run_coloring(cfg, entry.graph, a, opts);
      ASSERT_TRUE(check::is_valid_coloring(entry.graph, run.colors))
          << entry.name << " / " << algorithm_name(a);
    }
  }
}

TEST(EndToEnd, ColorCountsWithinGreedyBallpark) {
  const auto cfg = simgpu::tahiti();
  const auto entry = make_suite_graph("citation-like", quick_suite());
  const int greedy = greedy_color(entry.graph, GreedyOrder::kNatural).num_colors;
  ColoringOptions opts;
  opts.collect_launches = false;
  for (Algorithm a : all_algorithms()) {
    const ColoringRun run = run_coloring(cfg, entry.graph, a, opts);
    EXPECT_GE(run.num_colors, 3) << algorithm_name(a);
    if (a == Algorithm::kSpeculative) {
      // Speculative is parallel first-fit: close to sequential greedy.
      EXPECT_LE(run.num_colors, greedy * 2) << algorithm_name(a);
    } else {
      // Independent-set rounds trade color count for parallelism; on
      // skewed graphs they use several times more colors than greedy.
      EXPECT_LE(run.num_colors, greedy * 10) << algorithm_name(a);
    }
  }
}

TEST(EndToEnd, TechniquesBeatBaselineOnSkewedGraphs) {
  // The paper's headline: the hybrid (and hybrid+stealing) improve the
  // baseline on load-imbalanced (skewed) graphs.
  const auto cfg = simgpu::tahiti();
  ColoringOptions opts;
  opts.collect_launches = false;
  for (const char* name : {"citation-like", "kron-like"}) {
    const auto entry = make_suite_graph(name, perf_suite());
    const double base =
        run_coloring(cfg, entry.graph, Algorithm::kBaseline, opts).total_cycles;
    const double hybrid =
        run_coloring(cfg, entry.graph, Algorithm::kHybrid, opts).total_cycles;
    const double hsteal =
        run_coloring(cfg, entry.graph, Algorithm::kHybridSteal, opts).total_cycles;
    EXPECT_LT(hybrid, base) << name;
    EXPECT_LT(hsteal, base) << name;
  }
}

TEST(EndToEnd, StealingImprovesStaticPersistentPartitioning) {
  // The stealing technique is measured against the statically partitioned
  // persistent kernel it augments (NDRange dispatch already rebalances at
  // workgroup granularity, so that is the honest comparator).
  const auto cfg = simgpu::tahiti();
  ColoringOptions opts;
  opts.collect_launches = false;
  opts.chunk_size = 8;  // keep several chunks per persistent wave
  const auto entry = make_suite_graph("citation-like", perf_suite());
  const double stat =
      run_coloring(cfg, entry.graph, Algorithm::kPersistentStatic, opts)
          .total_cycles;
  const auto steal_run =
      run_coloring(cfg, entry.graph, Algorithm::kSteal, opts);
  EXPECT_GT(steal_run.steal.steal_hits, 0u);
  EXPECT_LE(steal_run.total_cycles, stat * 1.02);  // never materially worse
}

TEST(EndToEnd, RegularGraphsDontNeedTheHybrid) {
  // On a near-regular mesh every vertex falls in the small bin: the hybrid
  // degenerates to the worklist algorithm and must not be much slower.
  const auto cfg = simgpu::tahiti();
  ColoringOptions opts;
  opts.collect_launches = false;
  const auto entry = make_suite_graph("ecology-like", quick_suite());
  const double wl =
      run_coloring(cfg, entry.graph, Algorithm::kWorklist, opts).total_cycles;
  const double hybrid =
      run_coloring(cfg, entry.graph, Algorithm::kHybrid, opts).total_cycles;
  EXPECT_LT(hybrid, wl * 1.15);
}

TEST(EndToEnd, WorklistEliminatesWastedLaneWork) {
  // The worklist's benefit is in *work*: it never re-scans colored
  // vertices, so it issues far fewer instructions than the topology-driven
  // baseline. (Its *runtime* can still lose: shrinking frontiers expose
  // memory latency and scatter the remaining gathers — the trade-off the
  // hybrid resolves. EXPERIMENTS.md discusses this.)
  const auto cfg = simgpu::tahiti();
  const auto entry = make_suite_graph("er-like", quick_suite());
  const auto base = run_coloring(cfg, entry.graph, Algorithm::kBaseline);
  const auto wl = run_coloring(cfg, entry.graph, Algorithm::kWorklist);
  double base_instr = 0.0, wl_instr = 0.0;
  for (const auto& l : base.launches) base_instr += l.total.valu_instructions;
  for (const auto& l : wl.launches) wl_instr += l.total.valu_instructions;
  EXPECT_LT(wl_instr, 0.7 * base_instr);
}

TEST(EndToEnd, ReorderingChangesBaselinePerformance) {
  // Degree-sorted ordering groups similar degrees into wavefronts, which
  // must improve the baseline's SIMD efficiency on skewed graphs.
  const auto cfg = simgpu::tahiti();
  const auto entry = make_suite_graph("citation-like", quick_suite());
  ColoringOptions opts;
  const auto natural = run_coloring(cfg, entry.graph, Algorithm::kBaseline, opts);
  const Csr sorted = reorder(entry.graph, Order::kDegreeDescending);
  const auto ordered = run_coloring(cfg, sorted, Algorithm::kBaseline, opts);
  const auto rep_nat = summarize_launches(natural.launches, cfg.wavefront_size);
  const auto rep_ord = summarize_launches(ordered.launches, cfg.wavefront_size);
  EXPECT_GT(rep_ord.simd_efficiency, rep_nat.simd_efficiency);
}

TEST(EndToEnd, QualityReportConsistentWithRun) {
  const auto cfg = simgpu::tahiti();
  const auto entry = make_suite_graph("rgg-like", quick_suite());
  const auto run = run_coloring(cfg, entry.graph, Algorithm::kWorklist);
  const QualityReport q = analyze_quality(entry.graph, run.colors);
  EXPECT_EQ(q.num_colors, run.num_colors);
  std::uint64_t total = 0;
  for (auto s : q.class_sizes) total += s;
  EXPECT_EQ(total, entry.graph.num_vertices());
}

TEST(EndToEnd, CacheModelChangesTimingNeverResults) {
  // The L2 model is a pricing refinement: colors, iterations, and every
  // functional output must be bit-identical with and without it.
  const auto entry = make_suite_graph("citation-like", quick_suite());
  simgpu::DeviceConfig off = simgpu::tahiti();
  simgpu::DeviceConfig on = simgpu::tahiti();
  on.enable_l2_cache = true;
  ColoringOptions opts;
  opts.collect_launches = true;
  for (Algorithm a : {Algorithm::kBaseline, Algorithm::kSteal,
                      Algorithm::kHybridSteal}) {
    const ColoringRun plain = run_coloring(off, entry.graph, a, opts);
    const ColoringRun cached = run_coloring(on, entry.graph, a, opts);
    ASSERT_EQ(plain.colors, cached.colors) << algorithm_name(a);
    ASSERT_EQ(plain.iterations, cached.iterations) << algorithm_name(a);
    // Caching must help (irregular gathers still reuse hot lines).
    EXPECT_LT(cached.total_cycles, plain.total_cycles) << algorithm_name(a);
    std::uint64_t hits = 0;
    for (const auto& l : cached.launches) hits += l.total.mem_lines_hit;
    EXPECT_GT(hits, 0u) << algorithm_name(a);
  }
}

TEST(EndToEnd, DeviceTimeDecomposesIntoIterations) {
  const auto cfg = simgpu::tahiti();
  const auto entry = make_suite_graph("coauthor-like", quick_suite());
  const auto run = run_coloring(cfg, entry.graph, Algorithm::kSteal);
  double sum = 0.0;
  for (const auto& pt : run.activity) sum += pt.cycles;
  EXPECT_NEAR(sum, run.total_cycles, run.total_cycles * 1e-9);
}

}  // namespace
}  // namespace gcg
