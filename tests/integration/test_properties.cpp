// Property-based stress sweeps: randomized graphs from every family,
// pushed through the full pipeline, checking the invariants that must
// hold for *any* input — validity, determinism, conservation laws.
#include <gtest/gtest.h>

#include "coloring/balance.hpp"
#include "coloring/recolor.hpp"
#include "coloring/runner.hpp"
#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "graph/builder.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/random.hpp"
#include "graph/gen/smallworld.hpp"
#include "graph/io/io.hpp"
#include "graph/reorder.hpp"
#include "util/rng.hpp"

#include <sstream>

namespace gcg {
namespace {

/// A deterministic random graph drawn from a family selected by the seed.
Csr random_graph(std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  const auto n = static_cast<vid_t>(50 + rng.bounded(300));
  switch (rng.bounded(4)) {
    case 0:
      return make_erdos_renyi_gnm(n, static_cast<eid_t>(n) * (1 + rng.bounded(5)),
                                  seed);
    case 1:
      return make_barabasi_albert(n, 2 + static_cast<vid_t>(rng.bounded(4)), seed);
    case 2:
      return make_watts_strogatz(n, 4, 0.3, seed);
    default: {
      // Sparse random with isolated vertices thrown in.
      GraphBuilder b(n);
      const auto m = n / 2 + rng.bounded(n);
      for (eid_t e = 0; e < m; ++e) {
        b.add_edge(static_cast<vid_t>(rng.bounded(n)),
                   static_cast<vid_t>(rng.bounded(n)));
      }
      return b.build();
    }
  }
}

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySweep, AllGpuAlgorithmsProduceValidColorings) {
  const Csr g = random_graph(GetParam());
  const auto cfg = simgpu::test_device();
  ColoringOptions opts;
  opts.seed = GetParam() * 31 + 7;
  opts.collect_launches = false;
  for (Algorithm a : all_algorithms()) {
    const ColoringRun run = run_coloring(cfg, g, a, opts);
    ASSERT_TRUE(check::is_valid_coloring(g, run.colors))
        << algorithm_name(a) << " seed " << GetParam() << ": "
        << check::verify_coloring(g, run.colors)->to_string();
  }
}

TEST_P(PropertySweep, MaxMinFamilyAgreesExactly) {
  // All max-min implementations are different executions of one algorithm:
  // identical colors, bit for bit, whatever the graph.
  const Csr g = random_graph(GetParam() ^ 0xabcdULL);
  const auto cfg = simgpu::test_device();
  ColoringOptions opts;
  opts.seed = GetParam();
  opts.collect_launches = false;
  const auto ref = run_coloring(cfg, g, Algorithm::kBaseline, opts);
  for (Algorithm a : {Algorithm::kEdgeParallel, Algorithm::kWorklist,
                      Algorithm::kPersistentStatic, Algorithm::kSteal,
                      Algorithm::kHybrid, Algorithm::kHybridSteal}) {
    ASSERT_EQ(run_coloring(cfg, g, a, opts).colors, ref.colors)
        << algorithm_name(a) << " seed " << GetParam();
  }
}

TEST_P(PropertySweep, ColoringIsIsomorphismCovariant) {
  // Reordering then coloring with reordered priorities == coloring then
  // reordering when priorities are carried along. We check the weaker,
  // implementation-independent property: color-class size multiset of the
  // sequential greedy run is preserved under relabeling with the same
  // visiting order... simplest robust form: validity is preserved and the
  // color count of greedy(largest-first) is identical (degree multiset
  // determines the order up to ties).
  const Csr g = random_graph(GetParam() ^ 0x777ULL);
  const Csr h = reorder(g, Order::kRandom, GetParam() + 1);
  const int cg = greedy_color(g, GreedyOrder::kSmallestLast).num_colors;
  const int ch = greedy_color(h, GreedyOrder::kSmallestLast).num_colors;
  // Smallest-last is tie-dependent; counts may differ by a small margin.
  EXPECT_LE(std::abs(cg - ch), 2) << "seed " << GetParam();
}

TEST_P(PropertySweep, RecolorAndBalanceKeepInvariants) {
  const Csr g = random_graph(GetParam() ^ 0xf00dULL);
  const auto run =
      run_coloring(simgpu::test_device(), g, Algorithm::kBaseline);
  const RecolorResult r = reduce_colors(g, run.colors);
  ASSERT_TRUE(check::is_valid_coloring(g, r.colors));
  ASSERT_LE(r.num_colors, run.num_colors);
  const BalanceResult b = balance_colors(g, r.colors);
  ASSERT_TRUE(check::is_valid_coloring(g, b.colors));
  ASSERT_EQ(b.num_colors, r.num_colors);
}

TEST_P(PropertySweep, IoRoundTripsRandomGraphs) {
  const Csr g = random_graph(GetParam() ^ 0xbeefULL);
  for (int format = 0; format < 4; ++format) {
    std::stringstream buf;
    Csr back;
    switch (format) {
      case 0:
        save_edge_list(buf, g);
        back = load_edge_list(buf, g.num_vertices());
        break;
      case 1:
        save_matrix_market(buf, g);
        back = load_matrix_market(buf);
        break;
      case 2:
        save_dimacs_color(buf, g);
        back = load_dimacs_color(buf);
        break;
      default:
        save_binary(buf, g);
        back = load_binary(buf);
        break;
    }
    ASSERT_EQ(back.num_vertices(), g.num_vertices()) << format;
    ASSERT_TRUE(std::equal(g.row_offsets().begin(), g.row_offsets().end(),
                           back.row_offsets().begin(), back.row_offsets().end()))
        << format;
    ASSERT_TRUE(std::equal(g.col_indices().begin(), g.col_indices().end(),
                           back.col_indices().begin(), back.col_indices().end()))
        << format;
  }
}

TEST_P(PropertySweep, ActivityConservation) {
  // Sum of per-iteration commits equals n; frontier sizes telescope.
  const Csr g = random_graph(GetParam() ^ 0x1234ULL);
  const auto run = run_coloring(simgpu::test_device(), g, Algorithm::kWorklist);
  std::uint64_t colored = 0;
  for (std::size_t i = 0; i < run.activity.size(); ++i) {
    if (i > 0) {
      ASSERT_EQ(run.activity[i].active_vertices,
                run.activity[i - 1].active_vertices -
                    run.activity[i - 1].colored_this_iter);
    }
    colored += run.activity[i].colored_this_iter;
  }
  ASSERT_EQ(colored, g.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace gcg
