// Failure injection: feed the library corrupted inputs and make sure every
// layer fails loudly (throws or reports) instead of producing garbage.
#include <gtest/gtest.h>

#include <sstream>

#include "coloring/runner.hpp"
#include "check/coloring.hpp"
#include "graph/builder.hpp"
#include "graph/io/io.hpp"
#include "graph/reorder.hpp"
#include "graph/gen/special.hpp"
#include "util/rng.hpp"

namespace gcg {
namespace {

TEST(FailureInjection, CorruptCsrOffsetsRejected) {
  // Every malformed offset array must throw at construction.
  using V = std::vector<eid_t>;
  using C = std::vector<vid_t>;
  EXPECT_THROW(Csr(V{}, C{}), std::invalid_argument);          // empty rows
  EXPECT_THROW(Csr(V{1, 1}, C{0}), std::invalid_argument);     // rows[0]!=0
  EXPECT_THROW(Csr(V{0, 3, 2, 4}, C{0, 1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(Csr(V{0, 9}, C{0}), std::invalid_argument);     // bad total
}

TEST(FailureInjection, CorruptColumnIndexRejected) {
  EXPECT_THROW(Csr(std::vector<eid_t>{0, 1, 1}, std::vector<vid_t>{5}),
               std::invalid_argument);
}

TEST(FailureInjection, VerifierCatchesSingleFlippedColor) {
  // Flip one color anywhere in a valid coloring of a cycle: the verifier
  // must notice (unless the flip happens to stay proper).
  const Csr g = make_cycle(24);
  Xoshiro256ss rng(5);
  for (int trial = 0; trial < 24; ++trial) {
    std::vector<color_t> colors(24);
    for (vid_t v = 0; v < 24; ++v) colors[v] = static_cast<color_t>(v % 2);
    const auto victim = static_cast<vid_t>(rng.bounded(24));
    colors[victim] ^= 1;  // equal to both neighbours now
    EXPECT_FALSE(check::is_valid_coloring(g, colors)) << "victim " << victim;
    const auto violation = check::verify_coloring(g, colors);
    ASSERT_TRUE(violation.has_value());
    EXPECT_TRUE(violation->u == victim || violation->v == victim);
  }
}

TEST(FailureInjection, VerifierCatchesErasedColor) {
  const Csr g = make_cycle(10);
  std::vector<color_t> colors(10);
  for (vid_t v = 0; v < 10; ++v) colors[v] = static_cast<color_t>(v % 2);
  colors[7] = kUncolored;
  EXPECT_FALSE(check::is_valid_coloring(g, colors));
  EXPECT_TRUE(check::is_valid_coloring(g, colors, /*require_complete=*/false));
}

TEST(FailureInjection, TruncatedFilesThrow) {
  const Csr g = make_petersen();
  // Truncate each text format at several byte offsets: loads either throw
  // or (for prefix-valid cuts) produce a structurally valid graph.
  for (int format = 0; format < 3; ++format) {
    std::stringstream full;
    if (format == 0) {
      save_matrix_market(full, g);
    } else if (format == 1) {
      save_dimacs_color(full, g);
    } else {
      save_binary(full, g);
    }
    const std::string data = full.str();
    for (std::size_t cut : {data.size() / 4, data.size() / 2}) {
      std::istringstream in(data.substr(0, cut));
      try {
        Csr back = format == 0   ? load_matrix_market(in)
                   : format == 1 ? load_dimacs_color(in)
                                 : load_binary(in);
        back.validate();  // if it parsed, it must at least be structurally ok
      } catch (const std::runtime_error&) {
        SUCCEED();
      }
    }
  }
}

TEST(FailureInjection, GarbageBytesThrowEverywhere) {
  const std::string garbage = "\x7f\x45\x4c\x46 not a graph at all \xff\xfe";
  {
    std::istringstream in(garbage);
    EXPECT_THROW(load_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in(garbage);
    EXPECT_THROW(load_dimacs_color(in), std::runtime_error);
  }
  {
    std::istringstream in(garbage);
    EXPECT_THROW(load_binary(in), std::runtime_error);
  }
  {
    std::istringstream in(garbage);
    EXPECT_THROW(load_edge_list(in), std::runtime_error);
  }
}

TEST(FailureInjectionDeathTest, ApplyOrderRejectsNonPermutation) {
  const Csr g = make_cycle(4);
  EXPECT_DEATH(apply_order(g, {0, 0, 1, 2}), "precondition");
  EXPECT_DEATH(apply_order(g, {0, 1, 2}), "precondition");
}

TEST(FailureInjectionDeathTest, RunnerRejectsAbsurdGroupSize) {
  // Group size below the wavefront width cannot form a wave.
  const Csr g = make_cycle(4);
  ColoringOptions opts;
  opts.group_size = 4;  // < wavefront 64 on tahiti
  EXPECT_DEATH(run_coloring(simgpu::tahiti(), g, Algorithm::kBaseline, opts),
               "precondition");
}

TEST(FailureInjection, UnknownNamesThrowNotCrash) {
  EXPECT_THROW(algorithm_from_name("quantum"), std::invalid_argument);
  EXPECT_THROW(order_from_name("sorted-by-vibes"), std::invalid_argument);
  EXPECT_THROW(load_graph("graph.unknownext"), std::runtime_error);
}

}  // namespace
}  // namespace gcg
