#include "check/coloring.hpp"

#include <gtest/gtest.h>

#include "graph/gen/special.hpp"

namespace gcg {
namespace {

TEST(Verify, AcceptsProperColoring) {
  const Csr g = make_cycle(4);
  const std::vector<color_t> colors{0, 1, 0, 1};
  EXPECT_TRUE(check::is_valid_coloring(g, colors));
  EXPECT_FALSE(check::verify_coloring(g, colors).has_value());
}

TEST(Verify, DetectsAdjacentSameColor) {
  const Csr g = make_path(3);
  const std::vector<color_t> colors{0, 0, 1};
  const auto v = check::verify_coloring(g, colors);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->u, 0u);
  EXPECT_EQ(v->v, 1u);
  EXPECT_EQ(v->color, 0);
  EXPECT_NE(v->to_string().find("(0,1)"), std::string::npos);
}

TEST(Verify, DetectsUncoloredWhenCompleteRequired) {
  const Csr g = make_path(3);
  const std::vector<color_t> colors{0, kUncolored, 0};
  const auto v = check::verify_coloring(g, colors, /*require_complete=*/true);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->u, v->v);
  EXPECT_NE(v->to_string().find("uncolored"), std::string::npos);
}

TEST(Verify, PartialColoringOkWhenAllowed) {
  const Csr g = make_path(3);
  const std::vector<color_t> colors{0, kUncolored, 0};
  EXPECT_TRUE(check::is_valid_coloring(g, colors, /*require_complete=*/false));
}

TEST(Verify, PartialStillCatchesConflicts) {
  const Csr g = make_path(3);
  const std::vector<color_t> colors{0, 0, kUncolored};
  EXPECT_FALSE(check::is_valid_coloring(g, colors, /*require_complete=*/false));
}

TEST(Verify, EmptyGraphIsTriviallyValid) {
  const Csr g = make_empty(4);
  const std::vector<color_t> colors{0, 0, 0, 0};
  EXPECT_TRUE(check::is_valid_coloring(g, colors));
}

TEST(VerifyDeathTest, SizeMismatchAborts) {
  const Csr g = make_path(3);
  const std::vector<color_t> colors{0, 1};
  EXPECT_DEATH(check::is_valid_coloring(g, colors), "precondition");
}

}  // namespace
}  // namespace gcg
