// StressSchedule: the perturbation harness must actually fire at pool
// chunk boundaries, be deterministic in its decision stream, and — the
// point of the exercise — leave every scheduling invariant intact: JPL
// stays bit-identical across thread counts and schedules even when chunk
// boundaries yield and stall at random, and speculative/steal colorings
// stay valid.
#include "check/stress.hpp"

#include <gtest/gtest.h>

#include "check/coloring.hpp"
#include "check/csr.hpp"
#include "graph/gen/powerlaw.hpp"
#include "par/pool.hpp"
#include "par/runner.hpp"
#include "util/stress.hpp"

namespace gcg {
namespace {

TEST(StressSchedule, InstallsAndUninstallsTheGlobalHook) {
  EXPECT_FALSE(stress_hook_installed());
  {
    check::StressSchedule stress(42);
    EXPECT_TRUE(stress_hook_installed());
  }
  EXPECT_FALSE(stress_hook_installed());
}

TEST(StressSchedule, FiresAtThreadPoolChunkBoundaries) {
  check::StressSchedule stress(check::StressOptions{
      .seed = 7, .yield_probability = 0.5, .spin_probability = 0.5});
  par::ThreadPool pool(2);
  std::atomic<std::uint32_t> sum{0};
  pool.parallel_for(1000, 10, [&](std::uint32_t b, std::uint32_t e, unsigned) {
    // order: relaxed — independent tally, checked after the pool barrier.
    sum.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000u);
  EXPECT_EQ(stress.boundaries_seen(), 100u);  // 1000/10 chunk grabs
  // With p(yield)+p(spin)=1 every boundary perturbs.
  EXPECT_EQ(stress.perturbations(), stress.boundaries_seen());
}

TEST(StressSchedule, DecisionStreamIsSeedDeterministic) {
  // Same seed, same single-threaded chunk walk => identical counts.
  std::uint64_t runs[2];
  for (std::uint64_t& out : runs) {
    check::StressSchedule stress(check::StressOptions{
        .seed = 99, .yield_probability = 0.3, .spin_probability = 0.0});
    par::ThreadPool pool(1);
    pool.parallel_for(4096, 16, [](std::uint32_t, std::uint32_t, unsigned) {});
    out = stress.perturbations();
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_GT(runs[0], 0u);
}

TEST(StressScheduleDeathTest, SecondHarnessIsRejected) {
#if GTEST_HAS_DEATH_TEST
  check::StressSchedule outer(1);
  EXPECT_DEATH(check::StressSchedule inner(2), "precondition");
#endif
}

// --- the JPL bit-identity suite, rerun under perturbation -------------------

struct StressCombo {
  unsigned threads;
  par::Schedule schedule;
};

par::ParOptions opts_for(const StressCombo& c) {
  par::ParOptions o;
  o.threads = c.threads;
  o.seed = 1;
  o.schedule = c.schedule;
  o.hub_degree_threshold = 32;  // keep the cooperative hub path engaged
  return o;
}

TEST(StressSchedule, JplBitIdentityHoldsUnderPerturbation) {
  const Csr g = make_rmat(11, 8, {}, 99);
  ASSERT_FALSE(check::validate_csr(g).has_value());

  // Unperturbed, most conservative configuration as the reference.
  const par::ParRun ref = par::run_par_coloring(
      g, par::ParAlgorithm::kJpl,
      opts_for({1u, par::Schedule::kVertexChunks}));
  ASSERT_FALSE(check::verify_coloring(g, ref.colors).has_value());

  for (std::uint64_t seed : {3ull, 17ull}) {
    check::StressSchedule stress(check::StressOptions{
        .seed = seed, .yield_probability = 0.25, .spin_probability = 0.25});
    for (unsigned threads : {2u, 4u}) {
      for (par::Schedule s : {par::Schedule::kVertexChunks,
                              par::Schedule::kEdgeBalanced}) {
        const par::ParRun run = par::run_par_coloring(
            g, par::ParAlgorithm::kJpl, opts_for({threads, s}));
        EXPECT_EQ(run.colors, ref.colors)
            << threads << "t/" << par::schedule_name(s) << "/seed=" << seed;
        EXPECT_EQ(run.iterations, ref.iterations);
      }
    }
    EXPECT_GT(stress.perturbations(), 0u) << "harness never engaged";
  }
}

TEST(StressSchedule, SpeculativeAndStealStayValidUnderPerturbation) {
  const Csr g = make_barabasi_albert(3000, 8, 5);
  check::StressSchedule stress(check::StressOptions{
      .seed = 11, .yield_probability = 0.3, .spin_probability = 0.3});
  for (par::ParAlgorithm algo :
       {par::ParAlgorithm::kSpeculative, par::ParAlgorithm::kSteal}) {
    for (unsigned threads : {2u, 4u}) {
      par::ParOptions o;
      o.threads = threads;
      o.seed = 1;
      const par::ParRun run = par::run_par_coloring(g, algo, o);
      const auto violation = check::verify_coloring(g, run.colors);
      EXPECT_FALSE(violation.has_value())
          << par::par_algorithm_name(algo) << "/" << threads
          << "t: " << violation->to_string();
    }
  }
  EXPECT_GT(stress.perturbations(), 0u);
}

}  // namespace
}  // namespace gcg
