// Table-driven malformed-CSR tests: every defect class the validator
// knows about, fed as raw arrays (the Csr constructor would reject some
// of these shapes outright, which is exactly why validate_csr accepts
// spans).
#include "check/csr.hpp"

#include <gtest/gtest.h>

#include "graph/gen/special.hpp"
#include "graph/gen/random.hpp"

namespace gcg {
namespace {

using check::CsrCheckOptions;
using check::CsrDefect;
using check::validate_csr;

struct MalformedCase {
  const char* name;
  std::vector<eid_t> rows;
  std::vector<vid_t> cols;
  CsrDefect expect;
};

TEST(ValidateCsr, MalformedTable) {
  const MalformedCase cases[] = {
      {"empty_offsets", {}, {}, CsrDefect::kEmptyOffsets},
      {"bad_first_offset", {1, 2}, {0, 0}, CsrDefect::kBadFirstOffset},
      {"non_monotone", {0, 3, 2, 4}, {1, 2, 0, 0}, CsrDefect::kNonMonotoneOffsets},
      {"arc_count_mismatch", {0, 1, 2}, {1, 0, 0}, CsrDefect::kArcCountMismatch},
      {"out_of_range", {0, 1, 2}, {1, 7}, CsrDefect::kColumnOutOfRange},
      // vertex 0 lists {2, 1}: descending, no self loop involved
      {"unsorted", {0, 2, 2, 2}, {2, 1}, CsrDefect::kUnsortedNeighbors},
      {"unsorted_row2", {0, 1, 3, 4}, {1, 2, 0, 1}, CsrDefect::kUnsortedNeighbors},
      {"duplicate", {0, 2, 4}, {1, 1, 0, 0}, CsrDefect::kDuplicateNeighbor},
      {"self_loop", {0, 1, 2}, {0, 1}, CsrDefect::kSelfLoop},
      // 0->1 present, 1->0 missing (1 lists only itself? no: 1 lists 2)
      {"asymmetric", {0, 1, 2, 3}, {1, 2, 1}, CsrDefect::kAsymmetricEdge},
  };
  for (const auto& tc : cases) {
    const auto issue = validate_csr(tc.rows, tc.cols);
    ASSERT_TRUE(issue.has_value()) << tc.name;
    EXPECT_EQ(issue->defect, tc.expect)
        << tc.name << ": " << issue->to_string();
    EXPECT_FALSE(issue->to_string().empty()) << tc.name;
  }
}

TEST(ValidateCsr, UnsortedReportsRowAndPosition) {
  // Row 1's adjacency list {2, 0} descends at flat position 2.
  const std::vector<eid_t> rows{0, 1, 3, 4};
  const std::vector<vid_t> cols{1, 2, 0, 1};
  const auto issue = validate_csr(rows, cols, {.require_symmetric = false});
  ASSERT_TRUE(issue.has_value());
  EXPECT_EQ(issue->defect, CsrDefect::kUnsortedNeighbors);
  EXPECT_EQ(issue->row, 1u);
  EXPECT_EQ(issue->index, 2u);
}

TEST(ValidateCsr, OptionsRelaxChecks) {
  // A directed (asymmetric) edge passes when symmetry is not required.
  const std::vector<eid_t> rows{0, 1, 1};
  const std::vector<vid_t> cols{1};
  EXPECT_TRUE(validate_csr(rows, cols).has_value());
  EXPECT_FALSE(
      validate_csr(rows, cols, {.require_symmetric = false}).has_value());

  // Self loop allowed when asked for (and must then satisfy symmetry
  // trivially: u->u is its own mate).
  const std::vector<eid_t> loop_rows{0, 1};
  const std::vector<vid_t> loop_cols{0};
  EXPECT_TRUE(validate_csr(loop_rows, loop_cols).has_value());
  EXPECT_FALSE(
      validate_csr(loop_rows, loop_cols, {.allow_self_loops = true})
          .has_value());

  // Duplicates allowed when uniqueness is off (still sorted).
  const std::vector<eid_t> dup_rows{0, 2, 4};
  const std::vector<vid_t> dup_cols{1, 1, 0, 0};
  EXPECT_TRUE(validate_csr(dup_rows, dup_cols).has_value());
  EXPECT_FALSE(
      validate_csr(dup_rows, dup_cols, {.require_unique = false}).has_value());
}

TEST(ValidateCsr, AcceptsWellFormedGraphs) {
  EXPECT_FALSE(validate_csr(make_cycle(5)).has_value());
  EXPECT_FALSE(validate_csr(make_star(100)).has_value());
  EXPECT_FALSE(validate_csr(make_empty(3)).has_value());
  EXPECT_FALSE(validate_csr(make_erdos_renyi_gnm(500, 2000, 7)).has_value());
}

TEST(ValidateCsr, EmptyGraphSingleOffsetIsValid) {
  const std::vector<eid_t> rows{0};
  EXPECT_FALSE(validate_csr(rows, {}).has_value());
}

}  // namespace
}  // namespace gcg
