#include "sched/steal_queues.hpp"

#include <gtest/gtest.h>

#include "simgpu/config.hpp"

namespace gcg {
namespace {

class StealQueuesTest : public ::testing::Test {
 protected:
  simgpu::DeviceConfig cfg = simgpu::test_device();
  simgpu::Wave make_wave() {
    return simgpu::Wave(cfg, 0, cfg.wavefront_size, 1024);
  }
};

TEST_F(StealQueuesTest, PopOwnDrainsInOrder) {
  StealQueues q(2);
  q.fill(deal_round_robin(make_chunks(40, 10), 2));
  auto w = make_wave();
  // Worker 0 owns chunks starting at 0 and 20.
  auto c1 = q.pop_own(w, 0);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->begin, 0u);
  auto c2 = q.pop_own(w, 0);
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->begin, 20u);
  EXPECT_FALSE(q.pop_own(w, 0).has_value());
  EXPECT_EQ(q.remaining(0), 0u);
  EXPECT_EQ(q.remaining(1), 2u);
}

TEST_F(StealQueuesTest, StealTakesFromVictimTail) {
  StealQueues q(2);
  q.fill(deal_round_robin(make_chunks(40, 10), 2));
  auto w = make_wave();
  Xoshiro256ss rng(1);
  // Worker 0's queue: chunks {0,20}. Worker 1 steals -> gets the tail (20).
  auto drained = q.pop_own(w, 1);  // make worker 1 busy elsewhere first
  ASSERT_TRUE(drained.has_value());
  auto stolen = q.steal(w, 1, VictimPolicy::kRing, rng);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->begin, 20u);
  // Owner still gets the head.
  auto own = q.pop_own(w, 0);
  ASSERT_TRUE(own.has_value());
  EXPECT_EQ(own->begin, 0u);
  EXPECT_FALSE(q.pop_own(w, 0).has_value());  // tail already stolen
}

TEST_F(StealQueuesTest, EveryChunkDeliveredExactlyOnce) {
  // Property: under a random mix of pops and steals, each chunk surfaces
  // exactly once.
  for (VictimPolicy policy :
       {VictimPolicy::kRandom, VictimPolicy::kRichest, VictimPolicy::kRing}) {
    StealQueues q(4);
    const auto chunks = make_chunks(256, 8);
    q.fill(deal_round_robin(chunks, 4));
    auto w = make_wave();
    Xoshiro256ss rng(7);
    std::vector<int> seen(chunks.size(), 0);
    unsigned turn = 0;
    while (q.total_remaining() > 0) {
      const unsigned worker = turn++ % 4;
      std::optional<Chunk> c = (turn % 3 == 0)
                                   ? q.steal(w, worker, policy, rng)
                                   : q.pop_own(w, worker);
      if (c) ++seen[c->begin / 8];
    }
    for (int s : seen) ASSERT_EQ(s, 1) << victim_policy_name(policy);
  }
}

TEST_F(StealQueuesTest, StealFailsWhenAllEmpty) {
  StealQueues q(3);
  q.fill({{}, {}, {}});
  auto w = make_wave();
  Xoshiro256ss rng(2);
  EXPECT_FALSE(q.pop_own(w, 0).has_value());
  for (VictimPolicy policy :
       {VictimPolicy::kRandom, VictimPolicy::kRichest, VictimPolicy::kRing}) {
    EXPECT_FALSE(q.steal(w, 0, policy, rng).has_value());
  }
  EXPECT_EQ(q.stats().steal_hits, 0u);
  EXPECT_EQ(q.stats().steal_attempts, 3u);
}

TEST_F(StealQueuesTest, RichestPolicyPicksFullestVictim) {
  StealQueues q(3);
  std::vector<std::vector<Chunk>> dist(3);
  dist[0] = {};                                  // thief
  dist[1] = make_chunks(10, 10);                 // 1 chunk
  dist[2] = make_chunks(50, 10);                 // 5 chunks
  q.fill(dist);
  auto w = make_wave();
  Xoshiro256ss rng(3);
  const auto c = q.steal(w, 0, VictimPolicy::kRichest, rng);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(q.remaining(2), 4u);  // stolen from the fullest
  EXPECT_EQ(q.remaining(1), 1u);
}

TEST_F(StealQueuesTest, RichestCostsASweepOfCursorReads) {
  StealQueues q(8);
  std::vector<std::vector<Chunk>> dist(8);
  dist[5] = make_chunks(10, 10);
  q.fill(dist);
  auto w = make_wave();
  Xoshiro256ss rng(3);
  q.steal(w, 0, VictimPolicy::kRichest, rng);
  // 7 victims x 2 cursor reads + the successful take (2 reads + chunk).
  EXPECT_GE(w.cost().mem_transactions, 14u);
}

TEST_F(StealQueuesTest, QueueOpsChargeAtomics) {
  StealQueues q(2);
  q.fill(deal_round_robin(make_chunks(20, 10), 2));
  auto w = make_wave();
  q.pop_own(w, 0);
  EXPECT_EQ(w.cost().atomic_instructions, 1u);
  EXPECT_GE(w.cost().mem_transactions, 3u);  // 2 cursors + chunk descriptor
}

TEST_F(StealQueuesTest, StatsTrackPopsAndSteals) {
  StealQueues q(2);
  q.fill(deal_round_robin(make_chunks(40, 10), 2));
  auto w = make_wave();
  Xoshiro256ss rng(5);
  q.pop_own(w, 0);
  q.pop_own(w, 0);
  q.steal(w, 0, VictimPolicy::kRing, rng);
  EXPECT_EQ(q.stats().pops, 2u);
  EXPECT_EQ(q.stats().steal_attempts, 1u);
  EXPECT_EQ(q.stats().steal_hits, 1u);
  EXPECT_EQ(q.stats().chunks_stolen, 1u);
}

TEST_F(StealQueuesTest, TotalRemainingTracksAllQueues) {
  StealQueues q(2);
  q.fill(deal_round_robin(make_chunks(40, 10), 2));
  EXPECT_EQ(q.total_remaining(), 4u);
  auto w = make_wave();
  q.pop_own(w, 0);
  EXPECT_EQ(q.total_remaining(), 3u);
}

TEST_F(StealQueuesTest, RefillResetsStats) {
  StealQueues q(2);
  q.fill(deal_round_robin(make_chunks(20, 10), 2));
  auto w = make_wave();
  q.pop_own(w, 0);
  q.fill(deal_round_robin(make_chunks(20, 10), 2));
  EXPECT_EQ(q.stats().pops, 0u);
  EXPECT_EQ(q.total_remaining(), 2u);
}

}  // namespace
}  // namespace gcg
