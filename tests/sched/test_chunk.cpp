#include "sched/chunk.hpp"

#include <gtest/gtest.h>

namespace gcg {
namespace {

TEST(MakeChunks, ExactDivision) {
  const auto cs = make_chunks(100, 25);
  ASSERT_EQ(cs.size(), 4u);
  EXPECT_EQ(cs[0], (Chunk{0, 25}));
  EXPECT_EQ(cs[3], (Chunk{75, 100}));
}

TEST(MakeChunks, ShortTail) {
  const auto cs = make_chunks(10, 4);
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs[2], (Chunk{8, 10}));
  EXPECT_EQ(cs[2].size(), 2u);
}

TEST(MakeChunks, EmptyInput) {
  EXPECT_TRUE(make_chunks(0, 8).empty());
}

TEST(MakeChunks, ChunkLargerThanTotal) {
  const auto cs = make_chunks(3, 100);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0], (Chunk{0, 3}));
}

TEST(MakeChunks, CoverageIsCompleteAndDisjoint) {
  for (std::uint32_t total : {1u, 7u, 64u, 1000u}) {
    for (std::uint32_t size : {1u, 3u, 64u}) {
      const auto cs = make_chunks(total, size);
      std::uint32_t expected_begin = 0;
      for (const Chunk& c : cs) {
        ASSERT_EQ(c.begin, expected_begin);
        ASSERT_GT(c.end, c.begin);
        expected_begin = c.end;
      }
      ASSERT_EQ(expected_begin, total);
    }
  }
}

TEST(DealRoundRobin, InterleavesChunks) {
  const auto per = deal_round_robin(make_chunks(80, 10), 3);
  ASSERT_EQ(per.size(), 3u);
  EXPECT_EQ(per[0].size(), 3u);  // chunks 0,3,6
  EXPECT_EQ(per[1].size(), 3u);  // 1,4,7
  EXPECT_EQ(per[2].size(), 2u);  // 2,5
  EXPECT_EQ(per[0][1].begin, 30u);
  EXPECT_EQ(per[2][0].begin, 20u);
}

TEST(DealBlocked, ContiguousRuns) {
  const auto per = deal_blocked(make_chunks(80, 10), 3);
  ASSERT_EQ(per.size(), 3u);
  EXPECT_EQ(per[0].size(), 3u);  // chunks 0..2
  EXPECT_EQ(per[0][2].begin, 20u);
  EXPECT_EQ(per[1][0].begin, 30u);
}

TEST(Deal, MoreWorkersThanChunks) {
  const auto rr = deal_round_robin(make_chunks(16, 8), 5);
  std::size_t nonempty = 0;
  for (const auto& q : rr) nonempty += !q.empty();
  EXPECT_EQ(nonempty, 2u);
}

}  // namespace
}  // namespace gcg
