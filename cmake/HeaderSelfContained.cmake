# Header self-containedness check: generate one translation unit per
# header under src/ that includes it (twice — the include guard must
# hold) and nothing else, then compile them all into an OBJECT library.
# A header that silently depends on its includer's context fails this
# target, which is what keeps "#include what you use" true as the layers
# grow. Driven by the GCGPU_CHECK_HEADERS option; the lint CI job builds
# the target explicitly.
function(gcg_add_header_check)
  file(GLOB_RECURSE gcg_headers
    RELATIVE ${CMAKE_SOURCE_DIR}/src
    CONFIGURE_DEPENDS
    ${CMAKE_SOURCE_DIR}/src/*.hpp)

  set(gen_dir ${CMAKE_BINARY_DIR}/header_checks)
  set(sources "")
  foreach(hdr ${gcg_headers})
    string(MAKE_C_IDENTIFIER ${hdr} ident)
    set(tu ${gen_dir}/check_${ident}.cpp)
    set(content "// generated: ${hdr} must compile stand-alone
#include \"${hdr}\"
#include \"${hdr}\"  // and its include guard must hold
")
    # Only rewrite on content change so configure reruns don't trigger
    # recompilation of every check TU.
    set(previous "")
    if(EXISTS ${tu})
      file(READ ${tu} previous)
    endif()
    if(NOT previous STREQUAL content)
      file(WRITE ${tu} "${content}")
    endif()
    list(APPEND sources ${tu})
  endforeach()

  add_library(gcg_header_selfcontained OBJECT ${sources})
  target_include_directories(gcg_header_selfcontained PRIVATE
    ${CMAKE_SOURCE_DIR}/src)
  target_link_libraries(gcg_header_selfcontained PRIVATE gcgpu_warnings)
endfunction()
