# Negative-compile harness for the clang Thread Safety Analysis suite
# (tests/tsa/). One file, two personalities:
#
#  * Included as a module (from tests/tsa/CMakeLists.txt) it defines
#    gcg_find_tsa_compiler() and gcg_add_negative_compile_test(), which
#    register ctest entries labeled `tsa`.
#  * Invoked in script mode (cmake -P, which is how those tests run) it
#    compiles one source with -fsyntax-only and judges the outcome.
#
# A FAIL-expected test passes only when the compile fails AND the
# diagnostics mention Wthread-safety — an unrelated syntax error must not
# masquerade as the analysis catching the seeded violation. A
# PASS-expected test (the positive control) must compile cleanly.

# ---------------------------------------------------------------- script mode
if(CMAKE_SCRIPT_MODE_FILE STREQUAL CMAKE_CURRENT_LIST_FILE)
  foreach(var GCG_NC_COMPILER GCG_NC_SOURCE GCG_NC_INCLUDE GCG_NC_EXPECT)
    if(NOT DEFINED ${var})
      message(FATAL_ERROR "negative-compile: ${var} not set")
    endif()
  endforeach()

  execute_process(
    COMMAND "${GCG_NC_COMPILER}" -std=c++20 -fsyntax-only
            "-I${GCG_NC_INCLUDE}"
            -Wthread-safety -Wthread-safety-beta
            -Werror=thread-safety -Werror=thread-safety-beta
            "${GCG_NC_SOURCE}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

  if(GCG_NC_EXPECT STREQUAL "PASS")
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "expected clean compile but got rc=${rc}:\n${err}")
    endif()
  elseif(GCG_NC_EXPECT STREQUAL "FAIL")
    if(rc EQUAL 0)
      message(FATAL_ERROR
        "expected a thread-safety error but the file compiled cleanly")
    endif()
    # Clang tags its TSA diagnostics "[-Wthread-safety-...]" (or
    # "[-Werror,-Wthread-safety-...]" once promoted); requiring the
    # flag-then-closing-bracket shape keeps a non-clang "unrecognized
    # command-line option '-Wthread-safety'" error from counting as a
    # caught violation.
    if(NOT err MATCHES "-Wthread-safety[-a-z]*\\]")
      message(FATAL_ERROR
        "compile failed, but not from thread-safety analysis:\n${err}")
    endif()
  else()
    message(FATAL_ERROR "GCG_NC_EXPECT must be PASS or FAIL, got "
                        "'${GCG_NC_EXPECT}'")
  endif()
  return()
endif()

# ---------------------------------------------------------------- module mode

# Captured at include time; CMAKE_CURRENT_LIST_FILE inside a function
# would name the caller's list file (and the 3.17+
# CMAKE_CURRENT_FUNCTION_LIST_FILE would bump our minimum).
set(GCG_NEGATIVE_COMPILE_SCRIPT "${CMAKE_CURRENT_LIST_FILE}")

# Finds a clang able to run the analysis: the configured compiler when it
# already is clang, otherwise the newest clang++ on PATH. Sets ${out_var}
# to the compiler path, or to NOTFOUND when the suite must be skipped.
function(gcg_find_tsa_compiler out_var)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    set(${out_var} "${CMAKE_CXX_COMPILER}" PARENT_SCOPE)
    return()
  endif()
  find_program(GCG_TSA_CLANG
    NAMES clang++-19 clang++-18 clang++-17 clang++-16 clang++
    DOC "clang++ used for the thread-safety negative-compile suite")
  set(${out_var} "${GCG_TSA_CLANG}" PARENT_SCOPE)
endfunction()

# Registers one negative-compile ctest. `expect` is PASS (must compile)
# or FAIL (must die with a -Wthread-safety diagnostic).
function(gcg_add_negative_compile_test compiler name source expect)
  add_test(NAME tsa_${name}
    COMMAND "${CMAKE_COMMAND}"
            "-DGCG_NC_COMPILER=${compiler}"
            "-DGCG_NC_SOURCE=${source}"
            "-DGCG_NC_INCLUDE=${CMAKE_SOURCE_DIR}/src"
            "-DGCG_NC_EXPECT=${expect}"
            -P "${GCG_NEGATIVE_COMPILE_SCRIPT}")
  set_tests_properties(tsa_${name} PROPERTIES LABELS "tsa")
endfunction()
