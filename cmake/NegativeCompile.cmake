# Negative-compile harness shared by the clang Thread Safety Analysis
# suite (tests/tsa/) and the integer-conversion suite (tests/narrow/).
# One file, two personalities:
#
#  * Included as a module it defines gcg_find_tsa_compiler() and
#    gcg_add_negative_compile_test(), which register ctest entries.
#  * Invoked in script mode (cmake -P, which is how those tests run) it
#    compiles one source with -fsyntax-only and judges the outcome.
#
# A FAIL-expected test passes only when the compile fails AND the
# diagnostics match the suite's diagnostic-tag regex — an unrelated
# syntax error must not masquerade as the analysis catching the seeded
# violation. A PASS-expected test (the positive control) must compile
# cleanly.

# The two suites differ only in flags and in what a caught violation
# looks like. Defaults are the TSA suite's (the original client).
set(GCG_NC_DEFAULT_FLAGS
    "-Wthread-safety;-Wthread-safety-beta;-Werror=thread-safety;-Werror=thread-safety-beta")
set(GCG_NC_DEFAULT_DIAG "-Wthread-safety[-a-z]*\\]")

# ---------------------------------------------------------------- script mode
if(CMAKE_SCRIPT_MODE_FILE STREQUAL CMAKE_CURRENT_LIST_FILE)
  foreach(var GCG_NC_COMPILER GCG_NC_SOURCE GCG_NC_INCLUDE GCG_NC_EXPECT)
    if(NOT DEFINED ${var})
      message(FATAL_ERROR "negative-compile: ${var} not set")
    endif()
  endforeach()
  if(NOT DEFINED GCG_NC_FLAGS)
    set(GCG_NC_FLAGS "${GCG_NC_DEFAULT_FLAGS}")
  endif()
  if(NOT DEFINED GCG_NC_DIAG)
    set(GCG_NC_DIAG "${GCG_NC_DEFAULT_DIAG}")
  endif()
  # Flags travel ;-separated through -D (CMake lists); split into argv.
  separate_arguments(nc_flags UNIX_COMMAND "${GCG_NC_FLAGS}")
  string(REPLACE ";" " " nc_flags "${GCG_NC_FLAGS}")
  separate_arguments(nc_flags UNIX_COMMAND "${nc_flags}")

  execute_process(
    COMMAND "${GCG_NC_COMPILER}" -std=c++20 -fsyntax-only
            "-I${GCG_NC_INCLUDE}"
            ${nc_flags}
            "${GCG_NC_SOURCE}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

  if(GCG_NC_EXPECT STREQUAL "PASS")
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "expected clean compile but got rc=${rc}:\n${err}")
    endif()
  elseif(GCG_NC_EXPECT STREQUAL "FAIL")
    if(rc EQUAL 0)
      message(FATAL_ERROR
        "expected a diagnostic matching '${GCG_NC_DIAG}' but the file "
        "compiled cleanly")
    endif()
    # Both compilers tag promoted diagnostics with the driving flag in
    # brackets — gcc "[-Werror=sign-conversion]", clang
    # "[-Werror,-Wimplicit-int-conversion]". Requiring the tag shape keeps
    # an "unrecognized command-line option" error (or any plain syntax
    # error) from counting as a caught violation.
    if(NOT err MATCHES "${GCG_NC_DIAG}")
      message(FATAL_ERROR
        "compile failed, but not with a diagnostic matching "
        "'${GCG_NC_DIAG}':\n${err}")
    endif()
  else()
    message(FATAL_ERROR "GCG_NC_EXPECT must be PASS or FAIL, got "
                        "'${GCG_NC_EXPECT}'")
  endif()
  return()
endif()

# ---------------------------------------------------------------- module mode

# Captured at include time; CMAKE_CURRENT_LIST_FILE inside a function
# would name the caller's list file (and the 3.17+
# CMAKE_CURRENT_FUNCTION_LIST_FILE would bump our minimum).
set(GCG_NEGATIVE_COMPILE_SCRIPT "${CMAKE_CURRENT_LIST_FILE}")

# Finds a clang able to run the analysis: the configured compiler when it
# already is clang, otherwise the newest clang++ on PATH. Sets ${out_var}
# to the compiler path, or to NOTFOUND when the suite must be skipped.
function(gcg_find_tsa_compiler out_var)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    set(${out_var} "${CMAKE_CXX_COMPILER}" PARENT_SCOPE)
    return()
  endif()
  find_program(GCG_TSA_CLANG
    NAMES clang++-19 clang++-18 clang++-17 clang++-16 clang++
    DOC "clang++ used for the thread-safety negative-compile suite")
  set(${out_var} "${GCG_TSA_CLANG}" PARENT_SCOPE)
endfunction()

# Registers one negative-compile ctest. `expect` is PASS (must compile)
# or FAIL (must die with a diagnostic matching the suite's regex).
# Optional trailing arguments: LABEL <label> FLAGS <flag;list> DIAG <regex>
# — defaults reproduce the original TSA behaviour.
function(gcg_add_negative_compile_test compiler name source expect)
  # FLAGS is multi-value: a ;-list argument flattens into ${ARGN}, so a
  # one-value keyword would capture only the first flag.
  cmake_parse_arguments(nc "" "LABEL;DIAG" "FLAGS" ${ARGN})
  if(NOT nc_LABEL)
    set(nc_LABEL "tsa")
  endif()
  if(NOT nc_FLAGS)
    set(nc_FLAGS "${GCG_NC_DEFAULT_FLAGS}")
  endif()
  if(NOT nc_DIAG)
    set(nc_DIAG "${GCG_NC_DEFAULT_DIAG}")
  endif()
  # Flags are a ;-list; re-join with spaces so the value survives the
  # -D boundary, script mode splits it back apart.
  string(REPLACE ";" " " nc_flags_flat "${nc_FLAGS}")
  add_test(NAME ${nc_LABEL}_${name}
    COMMAND "${CMAKE_COMMAND}"
            "-DGCG_NC_COMPILER=${compiler}"
            "-DGCG_NC_SOURCE=${source}"
            "-DGCG_NC_INCLUDE=${CMAKE_SOURCE_DIR}/src"
            "-DGCG_NC_EXPECT=${expect}"
            "-DGCG_NC_FLAGS=${nc_flags_flat}"
            "-DGCG_NC_DIAG=${nc_DIAG}"
            -P "${GCG_NEGATIVE_COMPILE_SCRIPT}")
  set_tests_properties(${nc_LABEL}_${name} PROPERTIES LABELS "${nc_LABEL}")
endfunction()
